//! Mutable serving tier under a mixed read/write load, tracked over time.
//!
//! `retrieval_bench` measures frozen stores; this harness measures the
//! [`ShardedServingStore`] doing what frozen stores cannot: answering
//! queries *while* absorbing upserts and removals. It seeds a clustered
//! store hash-partitioned across `--shards` shards, then drives a mixed
//! workload in one of two modes:
//!
//! * **closed loop** (default): each worker pulls the next op off a
//!   shared counter and issues it as soon as the previous one finishes —
//!   measures peak throughput, but a stalled store stops the clock on
//!   every queued op, hiding the stall from the tail;
//! * **open loop** (`--open-loop`): ops arrive on a fixed schedule
//!   (`--rate` per second); latency is measured from each op's
//!   *scheduled* arrival to its completion, so an op that waited behind
//!   a backed-up store books the backlog it suffered — the
//!   coordinated-omission-safe tail the closed loop cannot see.
//!
//! Both modes record into shared lock-free histograms
//! ([`lh_bench::hist`]), reported per op class as p50/p95/p99/p999 and
//! the exact max. With background compaction (the default) the fold runs
//! on the compactor thread and writers never pay it; `--inline-compact`
//! restores the PR 9 behavior where the tripping writer folds in place —
//! the ~12 ms query outliers in the v1 ledger records. `--max-query-us`
//! asserts no query sample exceeded the bound (the regression gate for
//! "the fold left the hot path").
//!
//! Before anything is appended to the ledger, the harness re-asserts the
//! serving tier's core contract on sampled queries: sharded snapshot kNN
//! (per-shard masked probes + f64 key-offset merge) must be
//! **bit-identical** to a flat scan of the concatenated live rows. A
//! failed check aborts the run — no record is written from a store that
//! broke determinism under churn.
//!
//! Usage: `cargo run --release -p lh-bench --bin serve_bench
//!        [--n 50000] [--ops 20000] [--dim 16] [--k 10] [--threads 4]
//!        [--shards 1] [--open-loop] [--rate 2000] [--inline-compact]
//!        [--max-query-us 0] [--query-pct 80] [--upsert-pct 15]
//!        [--zipf 1.05] [--clusters 64] [--compact 4096]
//!        [--query-pool 256] [--verify-queries 16] [--variants a,b]
//!        [--out BENCH_serve.json] [--no-append]`
//!
//! (The remove share is whatever the query and upsert percentages leave.)

use lh_bench::hist::Histogram;
use lh_bench::synth::{clustered_row, mixture_centers, synth_clustered, ZipfSampler};
use lh_bench::{append_record, print_header, Args, Table};
use lh_core::config::{PluginConfig, PluginVariant};
use lh_core::{
    ServeHit, ServingOptions, ShardedServingOptions, ShardedServingStore, ShardedSnapshot,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const CLASS_NAMES: [&str; 3] = ["query", "upsert", "remove"];

/// How ops are driven at the store.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Closed,
    /// Fixed arrival schedule at `rate` ops/second.
    Open {
        rate: f64,
    },
}

/// Runs the mixed workload in either loop mode. Returns per-class shared
/// histograms plus the wall time. Op streams are a pure function of the
/// op index (class dice, ids, rows, query picks all derive from a
/// per-op rng), so thread count and scheduling never change *what* is
/// executed — only when.
#[allow(clippy::too_many_arguments)] // a bench driver, not an API
fn run_workload(
    store: &ShardedServingStore,
    query_pool: &lh_core::EmbeddingStore,
    cfg: &PluginConfig,
    centers: &[Vec<f32>],
    dim: usize,
    k: usize,
    ops: usize,
    threads: usize,
    mode: Mode,
    query_pct: usize,
    upsert_pct: usize,
    id_space: u64,
    zipf_s: f64,
) -> ([Histogram; 3], f64) {
    let hist: [Histogram; 3] = [Histogram::new(), Histogram::new(), Histogram::new()];
    let next_op = AtomicUsize::new(0);
    let id_zipf = ZipfSampler::new(id_space as usize, zipf_s);
    let query_zipf = ZipfSampler::new(query_pool.len(), zipf_s);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let next_op = &next_op;
            let id_zipf = &id_zipf;
            let query_zipf = &query_zipf;
            let hist = &hist;
            scope.spawn(move || loop {
                let i = next_op.fetch_add(1, Ordering::Relaxed);
                if i >= ops {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(0x5e47e ^ (i as u64).wrapping_mul(0x9e37));
                // Open loop: wait for the op's scheduled arrival, then
                // measure from that arrival — an op that starts late
                // because the store (or the host) is backed up keeps the
                // queueing delay in its sample.
                let reference = match mode {
                    Mode::Closed => None,
                    Mode::Open { rate } => {
                        let due = Duration::from_secs_f64(i as f64 / rate);
                        let now = started.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        Some(due)
                    }
                };
                let dice = rng.gen_range(0..100usize);
                let (class, t0) = if dice < query_pct {
                    let qi = query_zipf.sample(&mut rng);
                    let t0 = Instant::now();
                    let hits = store.snapshot().knn(query_pool, qi, k);
                    std::hint::black_box(hits);
                    (0, t0)
                } else if dice < query_pct + upsert_pct {
                    let id = id_zipf.sample(&mut rng) as u64;
                    let row = clustered_row(dim, centers, cfg, &mut rng);
                    let t0 = Instant::now();
                    store
                        .upsert(
                            id,
                            &row.eu,
                            cfg.variant.uses_hyperbolic().then_some(&row.hyper[..]),
                            cfg.variant.uses_fusion().then_some(&row.factors[..]),
                        )
                        .expect("upsert");
                    (1, t0)
                } else {
                    let id = id_zipf.sample(&mut rng) as u64;
                    let t0 = Instant::now();
                    store.remove(id).expect("remove");
                    (2, t0)
                };
                let latency = match reference {
                    // Completion minus scheduled arrival.
                    Some(due) => started.elapsed().saturating_sub(due),
                    None => t0.elapsed(),
                };
                hist[class].record(latency.as_nanos() as u64);
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    (hist, wall)
}

/// Asserts sharded snapshot kNN ≡ flat scan of the concatenated live
/// rows on `nv` sampled queries, bit for bit. Returns the number of
/// queries checked (aborts the process on mismatch).
fn assert_bit_identity(
    snap: &ShardedSnapshot,
    query_pool: &lh_core::EmbeddingStore,
    k: usize,
    nv: usize,
) -> usize {
    let (flat, ids) = snap.to_flat();
    let nv = nv.min(query_pool.len());
    for qi in 0..nv {
        let served: Vec<(u64, u32)> = snap
            .knn(query_pool, qi, k)
            .iter()
            .map(|h: &ServeHit| (h.id, h.distance.to_bits()))
            .collect();
        let reference: Vec<(u64, u32)> = flat
            .knn(query_pool, qi, k)
            .iter()
            .map(|h| (ids[h.index], h.distance.to_bits()))
            .collect();
        assert_eq!(
            served, reference,
            "sharded snapshot kNN diverged from the flat scan on verify query {qi}"
        );
    }
    nv
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 50_000usize);
    let ops = args.get("ops", 20_000usize);
    let dim = args.get("dim", 16usize);
    let k = args.get("k", 10usize);
    let threads = args.get("threads", 4usize);
    let shards = args.get("shards", 1usize);
    let open_loop = args.flag("open-loop");
    let rate = args.get("rate", 2000.0f64);
    let inline_compact = args.flag("inline-compact");
    let max_query_us = args.get("max-query-us", 0.0f64);
    let query_pct = args.get("query-pct", 80usize);
    let upsert_pct = args.get("upsert-pct", 15usize);
    let zipf_s = args.get("zipf", 1.05f64);
    let clusters = args.get("clusters", 64usize);
    let compact_threshold = args.get("compact", 4096usize);
    let query_pool_size = args.get("query-pool", 256usize);
    let verify_queries = args.get("verify-queries", 16usize);
    let out_path = args.get_str("out").unwrap_or("BENCH_serve.json");
    assert!(
        query_pct + upsert_pct <= 100,
        "query-pct + upsert-pct must leave a remove share"
    );
    assert!(shards >= 1, "--shards must be >= 1");
    let mode = if open_loop {
        assert!(rate > 0.0, "--rate must be positive in open-loop mode");
        Mode::Open { rate }
    } else {
        Mode::Closed
    };
    let mode_name = if open_loop { "open" } else { "closed" };
    let compaction_name = if inline_compact {
        "inline"
    } else {
        "background"
    };

    let all_variants = [
        PluginVariant::Original,
        PluginVariant::LorentzCosh,
        PluginVariant::FusionDist,
    ];
    let variants: Vec<PluginVariant> = match args.get_str("variants") {
        Some(list) => list
            .split(',')
            .map(|name| {
                *all_variants
                    .iter()
                    .find(|v| v.name() == name.trim())
                    .unwrap_or_else(|| panic!("unknown variant `{name}`"))
            })
            .collect(),
        None => all_variants.to_vec(),
    };

    print_header(
        "serve_bench",
        &format!(
            "mixed serving load: n={n}, {ops} ops on {threads} threads, {shards} shard(s), \
             {mode_name} loop{}, {compaction_name} compaction, {query_pct}/{upsert_pct}/{}% \
             query/upsert/remove, zipf s={zipf_s}",
            if open_loop {
                format!(" @ {rate:.0} ops/s")
            } else {
                String::new()
            },
            100 - query_pct - upsert_pct
        ),
    );
    let mut table = Table::new(&[
        "variant",
        "indexed",
        "query QPS",
        "q p50/p99/max µs",
        "upsert QPS",
        "u p50/p99 µs",
        "remove QPS",
        "epochs",
        "compactions",
        "bit-id",
    ]);
    let mut rows_json = Vec::new();
    for &variant in &variants {
        let plugin = PluginConfig::paper_default().with_variant(variant);
        let mut rng = StdRng::seed_from_u64(97 + n as u64);
        let centers = mixture_centers(clusters, dim, &mut rng);
        let base = synth_clustered(n, dim, &centers, &plugin, &mut rng);
        let query_pool = synth_clustered(query_pool_size, dim, &centers, &plugin, &mut rng);
        let store = ShardedServingStore::new(
            base,
            (0..n as u64).collect(),
            ShardedServingOptions {
                shards,
                background: !inline_compact,
                serving: ServingOptions {
                    compact_threshold,
                    ..ServingOptions::default()
                },
            },
        )
        .expect("seed store");
        // Writes target a zipf-hot id space twice the seed (hot updates
        // of existing rows plus a cold tail of inserts).
        let id_space = (n as u64).max(1) * 2;

        let (hist, wall) = run_workload(
            &store,
            &query_pool,
            &plugin,
            &centers,
            dim,
            k,
            ops,
            threads,
            mode,
            query_pct,
            upsert_pct,
            id_space,
            zipf_s,
        );
        // Quiesce: every scheduled background fold lands before the
        // stats, the identity check, and the ledger row are taken.
        store.drain().expect("background compaction");
        let stats = store.stats();
        let snap = store.snapshot();
        let checked = assert_bit_identity(&snap, &query_pool, k, verify_queries);
        println!(
            "[serve_bench] bit-identity: PASS ({checked} sampled queries vs flat scan, \
             {} live rows, {shards} shard(s), variant {})",
            snap.len(),
            variant.name()
        );
        let query_max = hist[0].max_us();
        if max_query_us > 0.0 {
            assert!(
                query_max <= max_query_us,
                "query latency outlier: max {query_max:.1} µs exceeds the \
                 --max-query-us bound {max_query_us:.1} µs \
                 ({compaction_name} compaction, {mode_name} loop)"
            );
            println!(
                "[serve_bench] query outlier bound: PASS \
                 (max {query_max:.1} µs <= {max_query_us:.1} µs)"
            );
        } else {
            println!("[serve_bench] query latency max: {query_max:.1} µs (no bound set)");
        }

        let mut class_json = Vec::new();
        let mut cells = Vec::new();
        for (ci, name) in CLASS_NAMES.iter().enumerate() {
            let count = hist[ci].count();
            let qps = count as f64 / wall;
            let (p50, p95, p99, p999) = (
                hist[ci].percentile_us(50.0),
                hist[ci].percentile_us(95.0),
                hist[ci].percentile_us(99.0),
                hist[ci].percentile_us(99.9),
            );
            let max = hist[ci].max_us();
            class_json.push(format!(
                "\"{name}\": {{\"count\": {count}, \"qps\": {qps:.2}, \
                 \"p50_us\": {p50:.1}, \"p95_us\": {p95:.1}, \"p99_us\": {p99:.1}, \
                 \"p999_us\": {p999:.1}, \"max_us\": {max:.1}}}"
            ));
            cells.push((qps, p50, p99, max));
        }
        table.row(vec![
            variant.name().to_string(),
            format!("{}", snap.base_indexed()),
            format!("{:.0}", cells[0].0),
            format!("{:.0}/{:.0}/{:.0}", cells[0].1, cells[0].2, cells[0].3),
            format!("{:.0}", cells[1].0),
            format!("{:.0}/{:.0}", cells[1].1, cells[1].2),
            format!("{:.0}", cells[2].0),
            format!("{}", stats.epoch),
            format!("{}", stats.compactions),
            "yes".to_string(),
        ]);
        rows_json.push(format!(
            "    {{\"variant\": \"{}\", \"base_indexed\": {}, \"epoch\": {}, \
             \"compactions\": {}, \"live_rows\": {}, \"wall_seconds\": {wall:.4}, \
             \"bit_identical\": true, \"verify_queries\": {checked}, {}}}",
            variant.name(),
            snap.base_indexed(),
            stats.epoch,
            stats.compactions,
            snap.len(),
            class_json.join(", "),
        ));
        eprintln!("[serve_bench] {} done in {wall:.2}s", variant.name());
    }
    table.print();
    println!(
        "\nreads are lock-free snapshot scans fanned out per shard and merged\n\
         at f64 precision; writers to different shards run in parallel, and\n\
         with {compaction_name} compaction the base fold every \
         {compact_threshold} changes\n\
         {} the write path.",
        if inline_compact {
            "runs inline on"
        } else {
            "stays off"
        }
    );

    if args.flag("no-append") {
        return;
    }
    let recorded = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let rate_json = if open_loop { rate } else { 0.0 };
    let record = format!(
        "  {{\n    \"schema\": \"serve-bench-v2\",\n    \"recorded_at_unix\": {recorded},\n    \
         \"n\": {n},\n    \"dim\": {dim},\n    \"k\": {k},\n    \"ops\": {ops},\n    \
         \"threads\": {threads},\n    \"zipf\": {zipf_s},\n    \"shards\": {shards},\n    \
         \"mode\": \"{mode_name}\",\n    \"compaction\": \"{compaction_name}\",\n    \
         \"rate\": {rate_json:.1},\n    \"query_pct\": {query_pct},\n    \
         \"upsert_pct\": {upsert_pct},\n    \"compact_threshold\": {compact_threshold},\n    \
         \"rows\": [\n{}\n    ]\n  }}",
        rows_json.join(",\n")
    );
    append_record(out_path, &record);
    println!("\nappended record to {out_path}");
}
