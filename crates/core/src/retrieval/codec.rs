//! Compact binary (de)serialization of [`EmbeddingStore`] payloads.
//!
//! Wire layout (all little-endian, unchanged from the legacy format so
//! existing payloads keep loading):
//!
//! ```text
//! u64 n | u64 dim | u8 variant | f32 beta | u64 factor_dim
//! u64 eu_len      | eu_len × f32
//! u64 hyper_len   | hyper_len × f32
//! u64 factor_len  | factor_len × f32
//! ```
//!
//! The legacy encoder pushed one `put_f32_le` per element and the decoder
//! popped one `get_f32_le` per element; both now stream whole buffers as
//! byte chunks via the shared `codec_util` helpers. Decoding
//! validates every length against the remaining bytes *before* reading
//! and cross-checks the buffer lengths against `n`/`dim`/`variant`, so
//! truncated or corrupt payloads return a [`StoreDecodeError`] instead of
//! panicking mid-read.

use super::codec_util::{guard, put_f32_chunk, take_f32_chunk, take_u64};
use super::store::EmbeddingStore;
use crate::config::PluginVariant;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Why a binary payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreDecodeError {
    /// The payload ended before a declared field.
    Truncated {
        /// Which field was being read.
        field: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The variant byte is not one of the four known tags.
    BadVariantTag(u8),
    /// A buffer length contradicts the header (`n`, `dim`, variant).
    Inconsistent {
        /// Which buffer disagreed.
        field: &'static str,
        /// Length the header implies.
        expected: usize,
        /// Length the payload declared.
        actual: usize,
    },
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    /// Header sizes (`n`, `dim`, `factor_dim`) so large their product
    /// overflows — no genuine payload can reach this.
    HeaderOverflow {
        /// Which buffer's expected size overflowed.
        field: &'static str,
    },
    /// A magic-number-prefixed payload (the index codec) does not start
    /// with the expected magic.
    BadMagic(u32),
    /// A versioned payload (the index codec) declares a format version
    /// this decoder does not understand.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for StoreDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreDecodeError::Truncated {
                field,
                needed,
                remaining,
            } => write!(
                f,
                "truncated payload: field `{field}` needs {needed} bytes, {remaining} remain"
            ),
            StoreDecodeError::BadVariantTag(tag) => {
                write!(f, "unknown plugin variant tag {tag}")
            }
            StoreDecodeError::Inconsistent {
                field,
                expected,
                actual,
            } => write!(
                f,
                "corrupt payload: `{field}` is {actual}, header implies {expected}"
            ),
            StoreDecodeError::TrailingBytes(extra) => {
                write!(f, "corrupt payload: {extra} trailing bytes after decode")
            }
            StoreDecodeError::HeaderOverflow { field } => {
                write!(f, "corrupt payload: header sizes for `{field}` overflow")
            }
            StoreDecodeError::BadMagic(magic) => {
                write!(f, "not an index payload: bad magic {magic:#010x}")
            }
            StoreDecodeError::UnsupportedVersion(version) => {
                write!(f, "unsupported index payload version {version}")
            }
        }
    }
}

impl std::error::Error for StoreDecodeError {}

impl EmbeddingStore {
    /// Compact binary serialization (length-prefixed little-endian f32
    /// buffers, streamed as whole byte chunks).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.payload_bytes() + 64);
        buf.put_u64_le(self.n as u64);
        buf.put_u64_le(self.dim as u64);
        buf.put_u8(match self.variant {
            PluginVariant::Original => 0,
            PluginVariant::LorentzVanilla => 1,
            PluginVariant::LorentzCosh => 2,
            PluginVariant::FusionDist => 3,
        });
        buf.put_f32_le(self.beta);
        buf.put_u64_le(self.factor_dim.unwrap_or(0) as u64);
        for chunk in [&self.eu, &self.hyper, &self.factors] {
            put_f32_chunk(&mut buf, chunk);
        }
        buf.freeze()
    }

    /// Inverse of [`EmbeddingStore::to_bytes`]. Truncated or internally
    /// inconsistent payloads return a [`StoreDecodeError`].
    pub fn from_bytes(mut data: Bytes) -> Result<Self, StoreDecodeError> {
        let n = take_u64(&mut data, "n")? as usize;
        let dim = take_u64(&mut data, "dim")? as usize;
        guard(&data, "variant", 1)?;
        let variant = match data.get_u8() {
            0 => PluginVariant::Original,
            1 => PluginVariant::LorentzVanilla,
            2 => PluginVariant::LorentzCosh,
            3 => PluginVariant::FusionDist,
            tag => return Err(StoreDecodeError::BadVariantTag(tag)),
        };
        guard(&data, "beta", 4)?;
        let beta = data.get_f32_le();
        let fd = take_u64(&mut data, "factor_dim")? as usize;
        let eu = take_f32_chunk(&mut data, "eu")?;
        let hyper = take_f32_chunk(&mut data, "hyper")?;
        let factors = take_f32_chunk(&mut data, "factors")?;
        if !data.is_empty() {
            return Err(StoreDecodeError::TrailingBytes(data.remaining()));
        }

        // A non-fusion store never carries a factor width (the
        // constructor nulls it); reject payloads that claim one. The
        // converse also panics later: a fusion store with rows but no
        // factor width would fail its first kernel bind, so reject that
        // here too (an *empty* fusion store may legitimately have fd=0).
        if !variant.uses_fusion() && fd != 0 {
            return Err(StoreDecodeError::Inconsistent {
                field: "factor_dim",
                expected: 0,
                actual: fd,
            });
        }
        if variant.uses_fusion() && fd == 0 && n > 0 {
            return Err(StoreDecodeError::Inconsistent {
                field: "factor_dim",
                expected: 1,
                actual: 0,
            });
        }

        // Cross-check buffer lengths against the header, with checked
        // arithmetic so absurd header sizes error instead of wrapping
        // past the validation (and then panicking in later accessors).
        let expect = |field: &'static str, a: usize, b: usize| {
            a.checked_mul(b)
                .ok_or(StoreDecodeError::HeaderOverflow { field })
        };
        let checks: [(&'static str, usize, usize); 3] = [
            ("eu", expect("eu", n, dim)?, eu.len()),
            (
                "hyper",
                if variant.uses_hyperbolic() {
                    // n·(dim+1) = n·dim + n, all checked.
                    expect("hyper", n, dim)?
                        .checked_add(n)
                        .ok_or(StoreDecodeError::HeaderOverflow { field: "hyper" })?
                } else {
                    0
                },
                hyper.len(),
            ),
            (
                "factors",
                if variant.uses_fusion() {
                    expect(
                        "factors",
                        n,
                        fd.checked_mul(2)
                            .ok_or(StoreDecodeError::HeaderOverflow { field: "factors" })?,
                    )?
                } else {
                    0
                },
                factors.len(),
            ),
        ];
        for (field, expected, actual) in checks {
            if expected != actual {
                return Err(StoreDecodeError::Inconsistent {
                    field,
                    expected,
                    actual,
                });
            }
        }

        Ok(EmbeddingStore {
            dim,
            variant,
            beta,
            factor_dim: if fd == 0 { None } else { Some(fd) },
            n,
            eu,
            hyper,
            factors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::store::tests::store_with_rows;
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        for variant in PluginVariant::ABLATION {
            let s = store_with_rows(variant);
            let b = s.to_bytes();
            let back = EmbeddingStore::from_bytes(b).expect("valid payload");
            assert_eq!(back, s, "{}", variant.name());
        }
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = EmbeddingStore::new(7, PluginVariant::FusionDist, 2.5, Some(3));
        let back = EmbeddingStore::from_bytes(s.to_bytes()).expect("valid payload");
        assert_eq!(back, s);
        assert_eq!(back.factor_dim(), Some(3));
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let s = store_with_rows(PluginVariant::FusionDist);
        let full = s.to_bytes().to_vec();
        for cut in 0..full.len() {
            let err = EmbeddingStore::from_bytes(Bytes::from(full[..cut].to_vec()));
            assert!(err.is_err(), "cut at {cut} of {} must error", full.len());
        }
        // The untruncated payload still decodes.
        assert!(EmbeddingStore::from_bytes(Bytes::from(full)).is_ok());
    }

    #[test]
    fn bad_variant_tag_errors() {
        let s = store_with_rows(PluginVariant::Original);
        let mut raw = s.to_bytes().to_vec();
        raw[16] = 9; // the variant byte follows the two u64 header words
        assert_eq!(
            EmbeddingStore::from_bytes(Bytes::from(raw)),
            Err(StoreDecodeError::BadVariantTag(9))
        );
    }

    #[test]
    fn inconsistent_lengths_error() {
        let s = store_with_rows(PluginVariant::Original);
        let mut raw = s.to_bytes().to_vec();
        raw[0] = 7; // claim n = 7 while buffers hold 3 rows
        let err = EmbeddingStore::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(
            err,
            StoreDecodeError::Inconsistent { field: "eu", .. }
        ));
    }

    #[test]
    fn overflowing_header_sizes_error() {
        // n = dim = 2^32 with three empty buffers: n·dim wraps to 0 on
        // 64-bit if unchecked, which would match the empty `eu` buffer
        // and produce a store whose accessors panic. Must error instead.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1u64 << 32); // n
        buf.put_u64_le(1u64 << 32); // dim
        buf.put_u8(0); // Original
        buf.put_f32_le(1.0);
        buf.put_u64_le(0); // factor_dim
        for _ in 0..3 {
            buf.put_u64_le(0); // empty eu / hyper / factors
        }
        let res = EmbeddingStore::from_bytes(buf.freeze());
        assert!(
            matches!(
                res,
                Err(StoreDecodeError::HeaderOverflow { .. })
                    | Err(StoreDecodeError::Inconsistent { .. })
            ),
            "got {res:?}"
        );
    }

    #[test]
    fn fusion_with_rows_but_no_factor_dim_errors() {
        // variant = FusionDist, n = 1, dim = 2, factor_dim = 0, buffers
        // internally consistent — the length checks alone would accept
        // this, and the resulting store's first kernel bind would panic.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1); // n
        buf.put_u64_le(2); // dim
        buf.put_u8(3); // FusionDist
        buf.put_f32_le(1.0);
        buf.put_u64_le(0); // factor_dim = 0
        for len in [2u64, 3, 0] {
            buf.put_u64_le(len);
            for _ in 0..len {
                buf.put_f32_le(0.5);
            }
        }
        let err = EmbeddingStore::from_bytes(buf.freeze()).unwrap_err();
        assert!(matches!(
            err,
            StoreDecodeError::Inconsistent {
                field: "factor_dim",
                ..
            }
        ));
    }

    #[test]
    fn nonzero_factor_dim_on_non_fusion_variant_errors() {
        let s = store_with_rows(PluginVariant::Original);
        let mut raw = s.to_bytes().to_vec();
        raw[21] = 3; // factor_dim u64 follows n, dim, variant, beta
        let err = EmbeddingStore::from_bytes(Bytes::from(raw)).unwrap_err();
        assert_eq!(
            err,
            StoreDecodeError::Inconsistent {
                field: "factor_dim",
                expected: 0,
                actual: 3
            }
        );
    }

    #[test]
    fn trailing_bytes_error() {
        let s = store_with_rows(PluginVariant::LorentzCosh);
        let mut raw = s.to_bytes().to_vec();
        raw.push(0);
        assert_eq!(
            EmbeddingStore::from_bytes(Bytes::from(raw)),
            Err(StoreDecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn decode_error_messages_are_informative() {
        let err = StoreDecodeError::Truncated {
            field: "hyper",
            needed: 40,
            remaining: 8,
        };
        assert!(err.to_string().contains("hyper"));
        assert!(StoreDecodeError::BadVariantTag(5).to_string().contains('5'));
    }
}
