//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Thin facade over the `serde` shim, whose `Serialize`/`Deserialize`
//! traits are already JSON-direct (see that crate's docs). Provides the
//! three entry points this workspace calls: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].
//!
//! Dialect note: non-finite floats are written bare (`NaN`, `Infinity`,
//! `-Infinity`) so matrices containing sentinel infinities roundtrip; the
//! parser accepts the same tokens.

pub use serde::{Error, Value};

/// Serializes `value` to compact JSON.
///
/// Infallible for the shim's data model; the `Result` keeps call sites
/// source-compatible with the real `serde_json`.
pub fn to_string<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    let compact = to_string(value)?;
    Ok(Value::parse(&compact)?.pretty())
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize_json(&Value::parse(text)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        label: String,
        weights: Vec<f64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Exact,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Doc {
        id: u64,
        mode: Mode,
        ratio: f32,
        inner: Nested,
        maybe: Option<i32>,
        pairs: Vec<(f64, f64)>,
        #[serde(skip)]
        cache: Vec<u8>,
    }

    fn doc() -> Doc {
        Doc {
            id: 12_345_678_901,
            mode: Mode::Exact,
            ratio: 0.25,
            inner: Nested {
                label: "a \"b\"\nc".into(),
                weights: vec![1.5, -0.125, f64::INFINITY],
            },
            maybe: None,
            pairs: vec![(0.1, 0.2), (3.0, -4.5)],
            cache: vec![1, 2, 3],
        }
    }

    #[test]
    fn derive_roundtrip() {
        let d = doc();
        let json = super::to_string(&d).unwrap();
        let back: Doc = super::from_str(&json).unwrap();
        // `cache` is #[serde(skip)]: it must not be serialized and must
        // come back as Default.
        assert!(back.cache.is_empty());
        assert_eq!(back.id, d.id);
        assert_eq!(back.mode, d.mode);
        assert_eq!(back.ratio, d.ratio);
        assert_eq!(back.inner, d.inner);
        assert_eq!(back.maybe, d.maybe);
        assert_eq!(back.pairs, d.pairs);
        assert!(!json.contains("cache"));
    }

    #[test]
    fn unit_enum_encoding() {
        assert_eq!(super::to_string(&Mode::Fast).unwrap(), "\"Fast\"");
        assert_eq!(super::from_str::<Mode>("\"Exact\"").unwrap(), Mode::Exact);
        assert!(super::from_str::<Mode>("\"Nope\"").is_err());
    }

    #[test]
    fn pretty_reparses_to_same_value() {
        let d = doc();
        let pretty = super::to_string_pretty(&d).unwrap();
        assert!(pretty.contains('\n'));
        let back: Doc = super::from_str(&pretty).unwrap();
        assert_eq!(back.inner, d.inner);
    }
}
