//! Edit Distance on Real sequences (Chen, Özsu & Oria, SIGMOD'05).
//!
//! Two points "match" when both coordinate deltas are within a tolerance
//! `eps`; EDR counts the minimum number of insert/delete/substitute edits.
//! EDR is integer-valued, symmetric, non-negative — and violates the
//! triangle inequality (it is famously only "almost" a metric; the paper's
//! Table I finds 9%–54% violating triplets).

use traj_core::{Point, Trajectory};

/// Whether two points match under the EDR tolerance (L∞ ball, the original
/// paper's definition).
#[inline]
fn matches(p: &Point, q: &Point, eps: f64) -> bool {
    (p.x - q.x).abs() <= eps && (p.y - q.y).abs() <= eps
}

/// EDR distance with tolerance `eps`, returned as `f64` (edit count).
///
/// Scalar reference for the wavefront tier ([`crate::matrix::wavefront`]);
/// the batched lanes run the same recurrence in f64 (exact for any real
/// edit count) and agree with this kernel bit for bit.
pub fn edr(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    let ap = a.points();
    let bp = b.points();
    let (n, m) = (ap.len(), bp.len());

    // dp[j] = EDR(a[..i], b[..j]) for the current row i.
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur = vec![0u32; m + 1];
    for i in 1..=n {
        cur[0] = i as u32;
        for j in 1..=m {
            let sub_cost = if matches(&ap[i - 1], &bp[j - 1], eps) {
                0
            } else {
                1
            };
            cur[j] = (prev[j - 1] + sub_cost)
                .min(prev[j] + 1)
                .min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as f64
}

/// EDR with early abandoning at `threshold`.
///
/// Same DP as [`edr`] (bit-identical completions — EDR is integer-valued,
/// so "bit-identical" is simply equality), plus a periodic check (every
/// [`crate::dtw::ABANDON_CHECK_INTERVAL`] rows): edit costs are
/// non-negative and every edit path crosses every row, so the row minimum
/// (including the all-deletions column 0) lower-bounds the final count.
/// The final row is never abandoned.
pub fn edr_early_abandon(
    a: &Trajectory,
    b: &Trajectory,
    eps: f64,
    threshold: f64,
) -> crate::measure::PrunedDistance {
    use crate::measure::PrunedDistance;
    let ap = a.points();
    let bp = b.points();
    let (n, m) = (ap.len(), bp.len());

    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur = vec![0u32; m + 1];
    for i in 1..=n {
        cur[0] = i as u32;
        for j in 1..=m {
            let sub_cost = if matches(&ap[i - 1], &bp[j - 1], eps) {
                0
            } else {
                1
            };
            cur[j] = (prev[j - 1] + sub_cost)
                .min(prev[j] + 1)
                .min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
        if i < n && i % crate::dtw::ABANDON_CHECK_INTERVAL == 0 {
            let row_min = *prev.iter().min().expect("row is non-empty");
            if row_min as f64 > threshold {
                return PrunedDistance::LowerBound(row_min as f64);
            }
        }
    }
    PrunedDistance::Exact(prev[m] as f64)
}

/// A scale-aware default tolerance: a fraction of the combined bounding-box
/// diagonal (EDR literature uses e.g. a fixed number of meters; here data is
/// normalized so a relative value is appropriate).
pub fn default_eps(a: &Trajectory, b: &Trajectory) -> f64 {
    let bb = a.bbox().union(&b.bbox());
    let diag = (bb.width().powi(2) + bb.height().powi(2)).sqrt();
    (diag * 0.05).max(f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(coords).unwrap()
    }

    #[test]
    fn identical_is_zero() {
        let a = t(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(edr(&a, &a, 0.1), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = t(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let b = t(&[(0.0, 0.2), (2.5, 2.0)]);
        assert_eq!(edr(&a, &b, 0.3), edr(&b, &a, 0.3));
    }

    #[test]
    fn disjoint_costs_max_len() {
        // No pair matches → classic edit distance over disjoint alphabets =
        // max(n, m).
        let a = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = t(&[(100.0, 100.0), (101.0, 100.0)]);
        assert_eq!(edr(&a, &b, 0.5), 3.0);
    }

    #[test]
    fn one_substitution() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = t(&[(0.0, 0.0), (50.0, 50.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
    }

    #[test]
    fn one_insertion() {
        let a = t(&[(0.0, 0.0), (2.0, 0.0)]);
        let b = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
    }

    #[test]
    fn eps_widens_matches() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = t(&[(0.3, 0.0), (1.3, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 2.0);
        assert_eq!(edr(&a, &b, 0.5), 0.0);
    }

    #[test]
    fn edr_triangle_violation_exists() {
        // With eps=0.5: a↔b match everywhere (cost 0), b↔c match everywhere
        // (cost 0), but a↔c don't (cost 2): 2 > 0 + 0. This "tolerance
        // chaining" is exactly why EDR is not a metric.
        let a = t(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = t(&[(0.4, 0.0), (1.4, 0.0)]);
        let c = t(&[(0.8, 0.0), (1.8, 0.0)]);
        let eps = 0.5;
        let ab = edr(&a, &b, eps);
        let bc = edr(&b, &c, eps);
        let ac = edr(&a, &c, eps);
        assert_eq!(ab, 0.0);
        assert_eq!(bc, 0.0);
        assert_eq!(ac, 2.0);
        assert!(ac > ab + bc);
    }

    #[test]
    fn default_eps_positive_and_scales() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = t(&[(0.0, 1.0), (1.0, 1.0)]);
        let e1 = default_eps(&a, &b);
        assert!(e1 > 0.0);
        let a10 = t(&[(0.0, 0.0), (10.0, 0.0)]);
        let b10 = t(&[(0.0, 10.0), (10.0, 10.0)]);
        assert!(default_eps(&a10, &b10) > e1 * 5.0);
    }
}
