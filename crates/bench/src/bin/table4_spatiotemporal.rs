//! **Table IV** — spatio-temporal accuracy (ST2Vec & Tedj) on the
//! T-Drive-like dataset with TP, DITA and discrete Fréchet ground truths.
//!
//! Usage: `cargo run --release -p lh-bench --bin table4_spatiotemporal
//!        [--n 160] [--epochs 30] [--seed 42] [--fast]`

use lh_bench::printer::{pct, pct_increase, write_artifact};
use lh_bench::{default_spec, print_header, Args, Table};
use lh_core::config::PluginVariant;
use lh_core::pipeline::run_experiment;
use lh_data::DatasetPreset;
use lh_metrics::ranking::RankingEval;
use lh_models::ModelKind;
use serde::Serialize;
use traj_dist::MeasureKind;

#[derive(Serialize)]
struct CellOut {
    model: String,
    measure: String,
    variant: String,
    eval: RankingEval,
    train_rv: f64,
}

fn main() {
    let args = Args::parse();
    print_header(
        "Table IV",
        "spatio-temporal accuracy, original vs LH-plugin (ST2Vec, Tedj)",
    );
    let models = if args.flag("fast") {
        vec![ModelKind::St2Vec]
    } else {
        vec![ModelKind::St2Vec, ModelKind::Tedj]
    };

    let mut table = Table::new(&[
        "model", "sim", "plugin", "HR@5", "HR@10", "HR@50", "NDCG@50",
    ]);
    let mut cells: Vec<CellOut> = Vec::new();
    for &model in &models {
        for measure in MeasureKind::SPATIO_TEMPORAL {
            let mut spec = default_spec(&args);
            spec.preset = DatasetPreset::TDrive;
            spec.model = model;
            spec.measure = measure;
            spec.trainer.epochs = args.get("epochs", 30usize);

            let mut evals = Vec::new();
            for variant in [PluginVariant::Original, PluginVariant::FusionDist] {
                spec.plugin = spec.plugin.with_variant(variant);
                let out = run_experiment(&spec);
                table.row(vec![
                    model.name().into(),
                    measure.name().into(),
                    if variant == PluginVariant::Original {
                        "Original".into()
                    } else {
                        "LH-plugin".into()
                    },
                    pct(out.eval.hr5),
                    pct(out.eval.hr10),
                    pct(out.eval.hr50),
                    format!("{:.4}", out.eval.ndcg50),
                ]);
                cells.push(CellOut {
                    model: model.name().into(),
                    measure: measure.name().into(),
                    variant: variant.name().into(),
                    eval: out.eval,
                    train_rv: out.train_rv,
                });
                evals.push(out.eval);
            }
            let (orig, lh) = (evals[0], evals[1]);
            table.row(vec![
                model.name().into(),
                measure.name().into(),
                "%Increase".into(),
                pct_increase(orig.hr5, lh.hr5),
                pct_increase(orig.hr10, lh.hr10),
                pct_increase(orig.hr50, lh.hr50),
                pct_increase(orig.ndcg50, lh.ndcg50),
            ]);
            eprintln!("[table4] finished {} / {}", model.name(), measure.name());
        }
    }
    table.print();
    let path = write_artifact("table4_spatiotemporal", &cells);
    println!("\nartifact: {}", path.display());
}
