//! **Fig. 8** — hyper-parameter sensitivity: β ∈ {0.25, 0.5, 1, 2, 4} and
//! c ∈ {1, 2, 4, 8}, HR@10 for the full plugin (the paper settles on
//! β = 1, c = 4).
//!
//! Usage: `cargo run --release -p lh-bench --bin fig8_hyperparams
//!        [--n 160] [--epochs 25] [--seed 42]`

use lh_bench::printer::write_artifact;
use lh_bench::{default_spec, print_header, Args, Table};
use lh_core::pipeline::run_experiment;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    param: String,
    value: f32,
    hr10: f64,
    hr50: f64,
    ndcg10: f64,
}

fn main() {
    let args = Args::parse();
    print_header("Fig. 8", "hyper-parameter evaluation (β and c sweeps)");
    let mut points = Vec::new();

    let mut beta_table = Table::new(&["β", "HR@10", "HR@50", "NDCG@10"]);
    for beta in [0.25f32, 0.5, 1.0, 2.0, 4.0] {
        let mut spec = default_spec(&args);
        spec.trainer.epochs = args.get("epochs", 25usize);
        spec.plugin = spec.plugin.with_beta(beta);
        let out = run_experiment(&spec);
        beta_table.row(vec![
            format!("{beta}"),
            format!("{:.3}", out.eval.hr10),
            format!("{:.3}", out.eval.hr50),
            format!("{:.3}", out.eval.ndcg10),
        ]);
        points.push(SweepPoint {
            param: "beta".into(),
            value: beta,
            hr10: out.eval.hr10,
            hr50: out.eval.hr50,
            ndcg10: out.eval.ndcg10,
        });
        eprintln!("[fig8] β = {beta} done");
    }
    println!("β sweep (c fixed at 4):");
    beta_table.print();

    let mut c_table = Table::new(&["c", "HR@10", "HR@50", "NDCG@10"]);
    for c in [1.0f32, 2.0, 4.0, 8.0] {
        let mut spec = default_spec(&args);
        spec.trainer.epochs = args.get("epochs", 25usize);
        spec.plugin = spec.plugin.with_c(c);
        let out = run_experiment(&spec);
        c_table.row(vec![
            format!("{c}"),
            format!("{:.3}", out.eval.hr10),
            format!("{:.3}", out.eval.hr50),
            format!("{:.3}", out.eval.ndcg10),
        ]);
        points.push(SweepPoint {
            param: "c".into(),
            value: c,
            hr10: out.eval.hr10,
            hr50: out.eval.hr50,
            ndcg10: out.eval.ndcg10,
        });
        eprintln!("[fig8] c = {c} done");
    }
    println!("\nc sweep (β fixed at 1):");
    c_table.print();

    let path = write_artifact("fig8_hyperparams", &points);
    println!("\nartifact: {}", path.display());
}
