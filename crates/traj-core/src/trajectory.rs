//! Variable-length trajectories `T = [p_1, …, p_n]`.

use crate::bbox::BoundingBox;
use crate::error::{Result, TrajError};
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A trajectory: a non-empty ordered sequence of points, all timestamped or
/// all untimestamped, validated on construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    /// Builds a trajectory, validating non-emptiness, finiteness, timestamp
    /// consistency and monotonicity.
    pub fn new(points: Vec<Point>) -> Result<Self> {
        if points.is_empty() {
            return Err(TrajError::EmptyTrajectory);
        }
        let timestamped = points[0].t.is_some();
        let mut last_t = f64::NEG_INFINITY;
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(TrajError::NonFiniteCoordinate { index: i });
            }
            if p.t.is_some() != timestamped {
                return Err(TrajError::InconsistentTimestamps);
            }
            if let Some(t) = p.t {
                if t < last_t {
                    return Err(TrajError::NonMonotonicTimestamps { index: i });
                }
                last_t = t;
            }
        }
        Ok(Trajectory { points })
    }

    /// Builds a trajectory from `(x, y)` pairs.
    pub fn from_xy(coords: &[(f64, f64)]) -> Result<Self> {
        Trajectory::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    /// Builds a trajectory from `(x, y, t)` triples.
    pub fn from_xyt(coords: &[(f64, f64, f64)]) -> Result<Self> {
        Trajectory::new(
            coords
                .iter()
                .map(|&(x, y, t)| Point::with_time(x, y, t))
                .collect(),
        )
    }

    /// The underlying point slice.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A trajectory is never empty by construction; provided for clippy's
    /// `len_without_is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether points carry timestamps.
    #[inline]
    pub fn is_timestamped(&self) -> bool {
        self.points[0].t.is_some()
    }

    /// Total polyline length (sum of consecutive point distances).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].dist(&w[1]))
            .sum::<f64>()
    }

    /// Time span covered, zero for untimestamped trajectories.
    pub fn duration(&self) -> f64 {
        match (
            self.points.first().and_then(|p| p.t),
            self.points.last().and_then(|p| p.t),
        ) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Axis-aligned bounding box of the trajectory.
    pub fn bbox(&self) -> BoundingBox {
        let mut bb = BoundingBox::empty();
        for p in &self.points {
            bb.extend(p.x, p.y);
        }
        bb
    }

    /// Centroid of the point set.
    pub fn centroid(&self) -> Point {
        let n = self.points.len() as f64;
        let (sx, sy) = self
            .points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }

    /// Prefix sub-trajectory containing the first `k` points (clamped to at
    /// least 1, at most `len`). Used by the Traj2SimVec-style sub-trajectory
    /// supervision.
    pub fn prefix(&self, k: usize) -> Trajectory {
        let k = k.clamp(1, self.points.len());
        Trajectory {
            points: self.points[..k].to_vec(),
        }
    }

    /// Uniformly resamples the polyline to exactly `m ≥ 2` points by arc
    /// length. Timestamps are interpolated when present.
    pub fn resample(&self, m: usize) -> Result<Trajectory> {
        if m < 2 {
            return Err(TrajError::InvalidConfig(
                "resample target must be at least 2 points".into(),
            ));
        }
        if self.points.len() == 1 {
            return Trajectory::new(vec![self.points[0]; m]);
        }
        let total = self.path_length();
        if total <= f64::EPSILON {
            return Trajectory::new(vec![self.points[0]; m]);
        }
        let mut out = Vec::with_capacity(m);
        out.push(self.points[0]);
        let mut seg = 0usize;
        let mut seg_start_acc = 0.0;
        let mut seg_len = self.points[0].dist(&self.points[1]);
        for i in 1..m - 1 {
            let target = total * (i as f64) / ((m - 1) as f64);
            while seg_start_acc + seg_len < target && seg + 2 < self.points.len() {
                seg_start_acc += seg_len;
                seg += 1;
                seg_len = self.points[seg].dist(&self.points[seg + 1]);
            }
            let u = if seg_len <= f64::EPSILON {
                0.0
            } else {
                ((target - seg_start_acc) / seg_len).clamp(0.0, 1.0)
            };
            out.push(self.points[seg].lerp(&self.points[seg + 1], u));
        }
        out.push(*self.points.last().expect("non-empty"));
        Trajectory::new(out)
    }

    /// Downsamples by keeping every `stride`-th point (always keeping the
    /// final point), simulating lower GPS sampling rates.
    pub fn downsample(&self, stride: usize) -> Result<Trajectory> {
        if stride == 0 {
            return Err(TrajError::InvalidConfig("stride must be positive".into()));
        }
        let mut pts: Vec<Point> = self.points.iter().copied().step_by(stride).collect();
        let last = *self.points.last().expect("non-empty");
        if pts.last() != Some(&last) {
            pts.push(last);
        }
        Trajectory::new(pts)
    }
}

impl std::ops::Index<usize> for Trajectory {
    type Output = Point;
    fn index(&self, i: usize) -> &Point {
        &self.points[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag() -> Trajectory {
        Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (2.0, 1.0)]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Trajectory::new(vec![]).unwrap_err(),
            TrajError::EmptyTrajectory
        );
    }

    #[test]
    fn rejects_nan() {
        let err = Trajectory::from_xy(&[(0.0, 0.0), (f64::NAN, 1.0)]).unwrap_err();
        assert_eq!(err, TrajError::NonFiniteCoordinate { index: 1 });
    }

    #[test]
    fn rejects_mixed_timestamps() {
        let pts = vec![Point::with_time(0.0, 0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(
            Trajectory::new(pts).unwrap_err(),
            TrajError::InconsistentTimestamps
        );
    }

    #[test]
    fn rejects_decreasing_timestamps() {
        let err = Trajectory::from_xyt(&[(0.0, 0.0, 5.0), (1.0, 1.0, 3.0)]).unwrap_err();
        assert_eq!(err, TrajError::NonMonotonicTimestamps { index: 1 });
    }

    #[test]
    fn path_length_sums_segments() {
        assert!((zigzag().path_length() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_and_timestamps() {
        let t = Trajectory::from_xyt(&[(0.0, 0.0, 10.0), (1.0, 0.0, 25.0)]).unwrap();
        assert!(t.is_timestamped());
        assert_eq!(t.duration(), 15.0);
        assert_eq!(zigzag().duration(), 0.0);
    }

    #[test]
    fn centroid_is_mean() {
        let c = zigzag().centroid();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_clamps() {
        let t = zigzag();
        assert_eq!(t.prefix(2).len(), 2);
        assert_eq!(t.prefix(0).len(), 1);
        assert_eq!(t.prefix(99).len(), 4);
    }

    #[test]
    fn resample_preserves_endpoints_and_count() {
        let t = zigzag();
        let r = t.resample(7).unwrap();
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], t[0]);
        assert_eq!(r[6], t[3]);
        // Path length is preserved up to polyline discretization (resampled
        // path can only be shorter or equal).
        assert!(r.path_length() <= t.path_length() + 1e-9);
    }

    #[test]
    fn resample_interpolates_time() {
        let t = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (10.0, 0.0, 100.0)]).unwrap();
        let r = t.resample(3).unwrap();
        let mid = r[1];
        assert!((mid.x - 5.0).abs() < 1e-9);
        assert!((mid.t.unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_keeps_last_point() {
        let t = zigzag();
        let d = t.downsample(3).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[1], t[3]);
        assert!(t.downsample(0).is_err());
    }

    #[test]
    fn bbox_covers_all_points() {
        let bb = zigzag().bbox();
        assert_eq!(bb.min_x, 0.0);
        assert_eq!(bb.max_x, 2.0);
        assert_eq!(bb.max_y, 1.0);
    }
}
