//! **Fig. 6** — scalability: accuracy vs training-set fraction
//! (20/40/60/80/100%), original vs LH-plugin with a fixed evaluation set.
//!
//! Each point also reports the serving cost at that scale: the trained
//! model's embeddings are loaded into the sharded retrieval engine and the
//! batched top-10 scan (`ShardedStore::knn_batch`) is timed per query, so
//! the figure shows how both accuracy *and* retrieval latency move as the
//! database grows.
//!
//! Usage: `cargo run --release -p lh-bench --bin fig6_scalability
//!        [--n 200] [--epochs 25] [--seed 42] [--shard-rows 8192]`

use lh_bench::printer::write_artifact;
use lh_bench::{default_spec, print_header, Args, Table};
use lh_core::config::PluginVariant;
use lh_core::pipeline::run_experiment;
use lh_core::retrieval::DEFAULT_SHARD_ROWS;
use lh_core::ShardedStore;
use serde::Serialize;

#[derive(Serialize)]
struct FracPoint {
    fraction: f64,
    variant: String,
    hr10: f64,
    hr50: f64,
    knn_query_seconds: f64,
}

fn main() {
    let args = Args::parse();
    print_header(
        "Fig. 6",
        "scalability: accuracy vs training data size, original vs LH-plugin",
    );
    let base = default_spec(&args);
    let full_db = base.n - base.n_queries;
    let shard_rows = args.get("shard-rows", DEFAULT_SHARD_ROWS);

    let mut table = Table::new(&["fraction", "plugin", "HR@10", "HR@50", "knn@10/query"]);
    let mut points = Vec::new();
    for frac in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        for variant in [PluginVariant::Original, PluginVariant::FusionDist] {
            let mut spec = default_spec(&args);
            spec.trainer.epochs = args.get("epochs", 25usize);
            // Shrink the database (training set); the query set stays the
            // same size and the same seed keeps it identical across runs.
            spec.n = (full_db as f64 * frac) as usize + spec.n_queries;
            spec.plugin = spec.plugin.with_variant(variant);
            let out = run_experiment(&spec);

            // Serving cost at this scale through the sharded engine,
            // reusing the stores the experiment already embedded.
            let q_store = out.q_store;
            let sharded = ShardedStore::new(out.db_store, shard_rows);
            let _ = sharded.knn_batch(&q_store, 10); // warm-up
            const REPS: usize = 5; // average several batches: one is µs-scale here
            let start = std::time::Instant::now();
            for _ in 0..REPS {
                std::hint::black_box(sharded.knn_batch(&q_store, 10));
            }
            let knn_query_seconds =
                start.elapsed().as_secs_f64() / (REPS * q_store.len().max(1)) as f64;

            table.row(vec![
                format!("{:.0}%", frac * 100.0),
                variant.name().into(),
                format!("{:.3}", out.eval.hr10),
                format!("{:.3}", out.eval.hr50),
                format!("{:.1} µs", knn_query_seconds * 1e6),
            ]);
            points.push(FracPoint {
                fraction: frac,
                variant: variant.name().into(),
                hr10: out.eval.hr10,
                hr50: out.eval.hr50,
                knn_query_seconds,
            });
            eprintln!("[fig6] fraction {frac} / {} done", variant.name());
        }
    }
    table.print();
    let path = write_artifact("fig6_scalability", &points);
    println!("\nartifact: {}", path.display());
}
