//! Scalar-vs-wavefront DP kernel timing, tracked over time.
//!
//! Measures µs/pair for the scalar kernels against the batched wavefront
//! tier (DTW / ERP / EDR) on deterministic synthetic pairs, verifies the
//! two paths agree bit for bit on the exact workload being timed, prints
//! a table, and appends one record to a JSON perf-trajectory artifact
//! (`BENCH_kernels.json` by default) so kernel regressions show up as a
//! time series rather than a vibe.
//!
//! Usage: `cargo run --release -p lh-bench --bin kernel_bench
//!        [--l 128] [--pairs 256] [--reps 5] [--out BENCH_kernels.json]
//!        [--no-append]`
//!
//! Timing is best-of-`reps` wall clock over the whole pair set (cold
//! caches and scheduler noise only ever make a rep slower, so min is the
//! right estimator for throughput tracking).

use lh_bench::{append_record, best_of, print_header, Args, Table};
use traj_core::Trajectory;
use traj_dist::matrix::wavefront::LANES;
use traj_dist::MeasureKind;

/// Deterministic sine-based pairs at length `l` with ±10% jitter, so the
/// wavefront planner also pays for padding like it does on real data.
fn make_pairs(l: usize, n_pairs: usize) -> Vec<(Trajectory, Trajectory)> {
    let traj = |i: usize| {
        let len = (l - l / 10 + (i * 13) % (l / 5).max(1)).max(1);
        let phase = i as f64 * 0.31;
        let pts: Vec<(f64, f64)> = (0..len)
            .map(|k| {
                let t = k as f64 * 0.05;
                (phase + t, (phase + t * 2.7).sin() * 0.4)
            })
            .collect();
        Trajectory::from_xy(&pts).unwrap()
    };
    (0..n_pairs)
        .map(|i| (traj(2 * i), traj(2 * i + 1)))
        .collect()
}

fn main() {
    let args = Args::parse();
    let l = args.get("l", 128usize);
    let n_pairs = args.get("pairs", 256usize);
    let reps = args.get("reps", 5usize);
    let out_path = args.get_str("out").unwrap_or("BENCH_kernels.json");

    let owned = make_pairs(l, n_pairs);
    let pairs: Vec<(&Trajectory, &Trajectory)> = owned.iter().map(|(a, b)| (a, b)).collect();

    print_header(
        "kernel_bench",
        &format!("scalar vs wavefront DP kernels, L≈{l}, {n_pairs} pairs, {LANES} lanes"),
    );
    let mut table = Table::new(&["measure", "scalar µs/pair", "wavefront µs/pair", "speedup"]);
    let mut rows_json = Vec::new();
    for kind in [MeasureKind::Dtw, MeasureKind::Erp, MeasureKind::Edr] {
        let m = kind.measure();
        let scalar_vals: Vec<f64> = pairs.iter().map(|&(a, b)| m.distance(a, b)).collect();
        let batched_vals = m.distance_batch(&pairs);
        for (k, (s, w)) in scalar_vals.iter().zip(&batched_vals).enumerate() {
            assert_eq!(
                s.to_bits(),
                w.to_bits(),
                "{} pair {k}: batched tier diverged from scalar on the timed workload",
                kind.name()
            );
        }
        let scalar_s = best_of(reps, || {
            pairs.iter().map(|&(a, b)| m.distance(a, b)).sum::<f64>()
        });
        let batched_s = best_of(reps, || m.distance_batch(&pairs));
        let per = 1e6 / n_pairs as f64;
        let (scalar_us, batched_us) = (scalar_s * per, batched_s * per);
        let speedup = scalar_us / batched_us;
        table.row(vec![
            kind.name().to_string(),
            format!("{scalar_us:.3}"),
            format!("{batched_us:.3}"),
            format!("{speedup:.2}x"),
        ]);
        rows_json.push(format!(
            "    {{\"measure\": \"{}\", \"scalar_us_per_pair\": {scalar_us:.4}, \
             \"wavefront_us_per_pair\": {batched_us:.4}, \"speedup\": {speedup:.3}}}",
            kind.name()
        ));
    }
    table.print();

    if args.flag("no-append") {
        return;
    }
    let recorded = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = format!(
        "  {{\n    \"schema\": \"kernel-bench-v1\",\n    \"recorded_at_unix\": {recorded},\n    \
         \"l\": {l},\n    \"pairs\": {n_pairs},\n    \"lanes\": {LANES},\n    \"rows\": [\n{}\n    ]\n  }}",
        rows_json.join(",\n")
    );
    append_record(out_path, &record);
    println!("\nappended record to {out_path}");
}
