//! Euclidean → hyperbolic projections (Section IV).
//!
//! **Vanilla projection** `φ` keeps the spatial coordinates and solves for
//! the time coordinate: `x₀ = √(Σxᵢ² + β)`. Theorem 6 proves the resulting
//! Lorentz distances collapse toward zero as input norms grow.
//!
//! **Cosh projection** `φ_cosh` instead treats the (compressed) Euclidean
//! norm as a *hyperbolic angle*: `x_H = (√β·cosh(m), √β·sinh(m)·x/‖x‖)`
//! with `m = γ_c(‖x‖²) = ‖x‖^{2/c}`. Theorem 7 shows the induced 2-D
//! Lorentz distance depends only on the angle gap and never collapses;
//! Theorems 8–9 lift that to arbitrary dimension.
//!
//! Note on the paper's formula: it writes `k = sinh(|x|)/|x| · √β` with
//! `|x| = γ_c(Σx²)`. That lands on `H(β)` only for `c = 2`; dividing by the
//! *uncompressed* L2 norm (as here) satisfies `⟨x_H,x_H⟩ = −β` for every
//! `c` and coincides with the paper at `c = 2`. See DESIGN.md §1.

use crate::lorentz::HyperbolicPoint;
use serde::{Deserialize, Serialize};

/// Norm compression `γ_c(s) = s^{1/c}` applied to the squared norm, i.e.
/// the compressed radius of a vector with squared norm `s`.
///
/// With `c = 2` this is the plain L2 norm; larger `c` damps large norms
/// (the paper settles on `c = 4`).
#[inline]
pub fn gamma_compress(norm_sq: f64, c: f64) -> f64 {
    debug_assert!(c > 0.0, "compression exponent must be positive");
    if norm_sq <= 0.0 {
        0.0
    } else {
        norm_sq.powf(1.0 / c)
    }
}

/// Vanilla hyperbolic projection φ: spatial part copied, time coordinate
/// solved from the membership constraint.
pub fn vanilla_project(x: &[f64], beta: f64) -> HyperbolicPoint {
    HyperbolicPoint::from_spatial(x, beta)
}

/// Cosh hyperbolic projection φ_cosh with compression exponent `c`.
pub fn cosh_project(x: &[f64], beta: f64, c: f64) -> HyperbolicPoint {
    let norm_sq: f64 = x.iter().map(|v| v * v).sum();
    let norm = norm_sq.sqrt();
    let m = gamma_compress(norm_sq, c);
    let sqrt_beta = beta.sqrt();
    let mut coords = Vec::with_capacity(x.len() + 1);
    coords.push(sqrt_beta * m.cosh());
    if norm <= f64::EPSILON {
        // Zero vector maps to the hyperboloid apex.
        coords.resize(x.len() + 1, 0.0);
    } else {
        let k = sqrt_beta * m.sinh() / norm;
        coords.extend(x.iter().map(|&v| v * k));
    }
    // Membership holds analytically (−β·cosh²m + β·sinh²m = −β); the
    // checked constructor cannot verify it at large m due to cancellation.
    HyperbolicPoint::new_unchecked(coords, beta)
}

/// Numerically stable Lorentz distance between the *cosh projections* of
/// two Euclidean vectors, computed without materializing the hyperbolic
/// coordinates.
///
/// Writing `a = √β(cosh m_a, sinh m_a·u_a)` and likewise for `b`, with
/// `ρ = u_a·u_b`:
///
/// ```text
/// ⟨a,b⟩ = β(−cosh(m_a − m_b) − (1 − ρ)·sinh m_a·sinh m_b)
/// d_Lo  = β(cosh(m_a − m_b) − 1) + β(1 − ρ)·sinh m_a·sinh m_b
/// ```
///
/// The naive `−a₀b₀ + Σaᵢbᵢ` cancels catastrophically once `m ≳ 18`
/// (`cosh²m` eats all 53 mantissa bits); this form stays exact for the
/// radial term at any radius. Used by the theorem demos, which sweep radii
/// far beyond anything training produces.
pub fn cosh_pair_lorentz_distance(xa: &[f64], xb: &[f64], beta: f64, c: f64) -> f64 {
    debug_assert_eq!(xa.len(), xb.len());
    let na_sq: f64 = xa.iter().map(|v| v * v).sum();
    let nb_sq: f64 = xb.iter().map(|v| v * v).sum();
    let (na, nb) = (na_sq.sqrt(), nb_sq.sqrt());
    let ma = gamma_compress(na_sq, c);
    let mb = gamma_compress(nb_sq, c);
    let radial = beta * ((ma - mb).cosh() - 1.0);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        // One point at the apex: the angular term vanishes with sinh(0).
        return radial;
    }
    let dot: f64 = xa.iter().zip(xb).map(|(p, q)| p * q).sum();
    let rho = (dot / (na * nb)).clamp(-1.0, 1.0);
    if rho >= 1.0 {
        // Exactly collinear: avoid 0·∞ when sinh overflows at huge radii.
        return radial;
    }
    radial + beta * (1.0 - rho) * ma.sinh() * mb.sinh()
}

/// Which projection to use — the ablation axis of Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProjectionKind {
    /// `φ`: direct lift (Theorem 6 shows distance degradation).
    Vanilla,
    /// `φ_cosh`: hyperbolic-angle lift (Theorems 7–9).
    Cosh,
}

/// A configured projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// Projection family.
    pub kind: ProjectionKind,
    /// Curvature parameter β of the target `H(β)`.
    pub beta: f64,
    /// Compression exponent `c` (Cosh only; the paper selects 4).
    pub c: f64,
}

impl Projection {
    /// The paper's final configuration: Cosh with β = 1, c = 4.
    pub fn paper_default() -> Self {
        Projection {
            kind: ProjectionKind::Cosh,
            beta: 1.0,
            c: 4.0,
        }
    }

    /// Projects a Euclidean vector.
    pub fn project(&self, x: &[f64]) -> HyperbolicPoint {
        match self.kind {
            ProjectionKind::Vanilla => vanilla_project(x, self.beta),
            ProjectionKind::Cosh => cosh_project(x, self.beta, self.c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lorentz::lorentz_inner;

    #[test]
    fn both_projections_satisfy_membership() {
        let xs = [
            vec![0.0, 0.0, 0.0],
            vec![1.0, -2.0, 0.5],
            vec![5.0, 3.0, -4.0],
        ];
        for beta in [0.5, 1.0, 2.0] {
            for c in [2.0, 4.0] {
                for x in &xs {
                    for p in [vanilla_project(x, beta), cosh_project(x, beta, c)] {
                        let inner = lorentz_inner(p.coords(), p.coords());
                        // Cancellation error scales with a₀².
                        let tol = 1e-12 * (1.0 + beta + p.coords()[0].powi(2));
                        assert!(
                            (inner + beta).abs() < tol,
                            "⟨a,a⟩={inner} for β={beta}, c={c}, x={x:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn projections_are_injective_on_samples() {
        // Distinct Euclidean inputs must stay distinct (Section IV's
        // bijectivity requirement).
        let xs = [
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![-1.0, 1.0],
            vec![2.0, 0.0],
        ];
        let proj = Projection::paper_default();
        for (i, a) in xs.iter().enumerate() {
            for (j, b) in xs.iter().enumerate() {
                if i == j {
                    continue;
                }
                let pa = proj.project(a);
                let pb = proj.project(b);
                let diff: f64 = pa
                    .coords()
                    .iter()
                    .zip(pb.coords())
                    .map(|(u, v)| (u - v).abs())
                    .sum();
                assert!(diff > 1e-9, "collision between {a:?} and {b:?}");
            }
        }
    }

    #[test]
    fn cosh_at_origin_is_apex() {
        let p = cosh_project(&[0.0, 0.0], 1.0, 4.0);
        assert!((p.coords()[0] - 1.0).abs() < 1e-12);
        assert_eq!(p.coords()[1], 0.0);
        assert_eq!(p.coords()[2], 0.0);
    }

    #[test]
    fn cosh_c2_matches_paper_formula() {
        // For c = 2 the consistent form equals the paper's literal formula:
        // k = √β sinh(‖x‖)/‖x‖.
        let x = [0.6, -0.8]; // ‖x‖ = 1
        let beta = 1.0;
        let p = cosh_project(&x, beta, 2.0);
        assert!((p.coords()[0] - 1.0f64.cosh()).abs() < 1e-12);
        assert!((p.coords()[1] - 0.6 * 1.0f64.sinh()).abs() < 1e-12);
        assert!((p.coords()[2] - (-0.8) * 1.0f64.sinh()).abs() < 1e-12);
    }

    #[test]
    fn gamma_compress_behaviour() {
        assert_eq!(gamma_compress(0.0, 4.0), 0.0);
        // c=2: radius 3 → norm_sq 9 → 3.
        assert!((gamma_compress(9.0, 2.0) - 3.0).abs() < 1e-12);
        // c=4: norm_sq 16 → 2.
        assert!((gamma_compress(16.0, 4.0) - 2.0).abs() < 1e-12);
        // Larger c compresses more for radii > 1.
        assert!(gamma_compress(100.0, 8.0) < gamma_compress(100.0, 4.0));
    }

    #[test]
    fn theorem7_distance_depends_only_on_gap_1d() {
        // 1-D inputs a, b: d_Lo = β(cosh(m_b − m_a) − 1) — shift-dependent
        // only through the compressed radii. With c = 2 and inputs on the
        // same side, equal gaps at any offset give equal distances.
        let beta = 1.0;
        let d_at = |a: f64, b: f64| cosh_pair_lorentz_distance(&[a], &[b], beta, 2.0);
        let d1 = d_at(1.0, 2.0);
        let d2 = d_at(10.0, 11.0);
        let d3 = d_at(100.0, 101.0);
        assert!((d1 - d2).abs() < 1e-9, "d1={d1} d2={d2}");
        assert!((d2 - d3).abs() < 1e-9, "d2={d2} d3={d3}");
        // And the analytic value β(cosh(1) − 1).
        assert!((d1 - (1.0f64.cosh() - 1.0)).abs() < 1e-9);
        // The materialized-coordinate path agrees while m is small enough
        // to avoid cancellation.
        let pa = cosh_project(&[1.0], beta, 2.0);
        let pb = cosh_project(&[2.0], beta, 2.0);
        assert!((pa.lorentz_distance(&pb) - d1).abs() < 1e-9);
    }

    #[test]
    fn theorem6_vanilla_degrades_cosh_does_not() {
        // Collinear pairs with a constant Euclidean gap moved away from the
        // origin (the Theorem 6 regime: nearly identical directions, large
        // norms): vanilla Lorentz distance → 0 — the radial component is
        // entirely washed out — while the cosh distance stays put.
        let beta = 1.0;
        let g = 1.0 / std::f64::consts::SQRT_2; // unit Euclidean gap along (1,1)
        let offsets = [1.0, 10.0, 100.0, 1000.0];
        let mut vanilla_prev = f64::INFINITY;
        for &o in &offsets {
            let a = [o, o];
            let b = [o + g, o + g];
            let v = vanilla_project(&a, beta).lorentz_distance(&vanilla_project(&b, beta));
            let h = cosh_pair_lorentz_distance(&a, &b, beta, 2.0);
            assert!(v < vanilla_prev, "vanilla must decay monotonically here");
            vanilla_prev = v;
            assert!(h > 0.1, "cosh distance collapsed: {h} at offset {o}");
        }
        assert!(
            vanilla_prev < 1e-3,
            "vanilla did not degrade: {vanilla_prev}"
        );
    }

    #[test]
    fn projection_serde_roundtrip() {
        let p = Projection::paper_default();
        let j = serde_json::to_string(&p).unwrap();
        let back: Projection = serde_json::from_str(&j).unwrap();
        assert_eq!(back, p);
    }
}
