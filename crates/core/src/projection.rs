//! Differentiable Euclidean → hyperbolic projection (Section IV on the
//! tape).
//!
//! Mirrors `lh_hyperbolic::projection` (the `f64` reference), but as tape
//! operations so training backpropagates through the lift. Batch semantics:
//! rows of a `B×d` matrix are projected independently into `B×(d+1)`.
//!
//! Numerical guards: norms get a `1e-12` floor before `sqrt`/`powf`, which
//! keeps gradients finite at the apex (the γ_c derivative is unbounded at
//! exactly zero norm for `c > 2` — a true property of the math, tamed here
//! exactly the way the reference implementation and the optimizer's
//! gradient clip expect).

use crate::config::{PluginConfig, PluginVariant};
use lh_nn::{Tape, Var};

const NORM_EPS: f32 = 1e-12;

/// Vanilla projection of embedding rows: `x ↦ (√(‖x‖² + β), x)`.
pub fn vanilla_project_rows(tape: &mut Tape, x: Var, beta: f32) -> Var {
    let sq = tape.square(x);
    let norm_sq = tape.row_sum(sq); // B×1
    let shifted = tape.add_const(norm_sq, beta);
    let x0 = tape.sqrt(shifted); // B×1
    tape.concat_cols(x0, x)
}

/// Cosh projection of embedding rows:
/// `x ↦ (√β·cosh(m), √β·sinh(m)·x/‖x‖)` with `m = (‖x‖²)^{1/c}`.
pub fn cosh_project_rows(tape: &mut Tape, x: Var, beta: f32, c: f32) -> Var {
    let sqrt_beta = beta.sqrt();
    let sq = tape.square(x);
    let norm_sq_raw = tape.row_sum(sq); // B×1
    let norm_sq = tape.add_const(norm_sq_raw, NORM_EPS);
    let m = tape.powf(norm_sq, 1.0 / c); // B×1 compressed radius
    let norm = tape.sqrt(norm_sq); // B×1

    let cm = tape.cosh(m);
    let x0 = tape.scale(cm, sqrt_beta); // B×1

    let sm = tape.sinh(m);
    let k_unit = tape.div(sm, norm); // B×1: sinh(m)/‖x‖
    let k = tape.scale(k_unit, sqrt_beta);
    let spatial = tape.mul(x, k); // column-broadcast over B×d
    tape.concat_cols(x0, spatial)
}

/// Projects embedding rows according to the configured variant. Panics for
/// [`PluginVariant::Original`], which has no hyperbolic part.
pub fn project_rows(tape: &mut Tape, x: Var, config: &PluginConfig) -> Var {
    match config.variant {
        PluginVariant::Original => {
            panic!("`original` variant has no hyperbolic projection")
        }
        PluginVariant::LorentzVanilla => vanilla_project_rows(tape, x, config.beta),
        PluginVariant::LorentzCosh | PluginVariant::FusionDist => {
            cosh_project_rows(tape, x, config.beta, config.c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_hyperbolic::projection as refproj;
    use lh_nn::Tensor;

    fn rows() -> Tensor {
        Tensor::from_vec(3, 2, vec![0.5, -0.3, 2.0, 1.0, 0.0, 0.0])
    }

    #[test]
    fn vanilla_matches_f64_reference() {
        let mut tape = Tape::new();
        let x = tape.constant(rows());
        let p = vanilla_project_rows(&mut tape, x, 1.0);
        let v = tape.value(p);
        assert_eq!(v.shape(), (3, 3));
        for r in 0..3 {
            let input: Vec<f64> = rows().row(r).iter().map(|&f| f as f64).collect();
            let expect = refproj::vanilla_project(&input, 1.0);
            for (c, e) in expect.coords().iter().enumerate() {
                assert!(
                    (v.get(r, c) as f64 - e).abs() < 1e-5,
                    "row {r} col {c}: {} vs {e}",
                    v.get(r, c)
                );
            }
        }
    }

    #[test]
    fn cosh_matches_f64_reference() {
        for c_exp in [2.0f32, 4.0] {
            let mut tape = Tape::new();
            let x = tape.constant(rows());
            let p = cosh_project_rows(&mut tape, x, 1.0, c_exp);
            let v = tape.value(p);
            for r in 0..2 {
                // Skip the zero row (apex): reference handles it exactly,
                // the tape path via eps — checked separately below.
                let input: Vec<f64> = rows().row(r).iter().map(|&f| f as f64).collect();
                let expect = refproj::cosh_project(&input, 1.0, c_exp as f64);
                for (c, e) in expect.coords().iter().enumerate() {
                    assert!(
                        (v.get(r, c) as f64 - e).abs() < 1e-4,
                        "c={c_exp} row {r} col {c}: {} vs {e}",
                        v.get(r, c)
                    );
                }
            }
        }
    }

    #[test]
    fn apex_row_is_near_apex() {
        let mut tape = Tape::new();
        let x = tape.constant(rows());
        let p = cosh_project_rows(&mut tape, x, 1.0, 4.0);
        let v = tape.value(p);
        // Row 2 is the zero vector: x0 ≈ √β = 1, spatial ≈ 0.
        assert!((v.get(2, 0) - 1.0).abs() < 1e-3);
        assert!(v.get(2, 1).abs() < 1e-3);
        assert!(v.get(2, 2).abs() < 1e-3);
    }

    #[test]
    fn projections_satisfy_membership() {
        for (name, beta) in [("v", 1.0f32), ("v2", 2.0)] {
            let _ = name;
            let mut tape = Tape::new();
            let x = tape.constant(rows());
            let pv = vanilla_project_rows(&mut tape, x, beta);
            let pc = cosh_project_rows(&mut tape, x, beta, 4.0);
            for p in [pv, pc] {
                let v = tape.value(p).clone();
                for r in 0..2 {
                    let row = v.row(r);
                    let inner: f32 = -row[0] * row[0] + row[1..].iter().map(|a| a * a).sum::<f32>();
                    assert!((inner + beta).abs() < 1e-3, "⟨a,a⟩ = {inner} ≠ −{beta}");
                }
            }
        }
    }

    #[test]
    fn projection_is_differentiable() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(1, 2, vec![0.7, -0.4]));
        let p = cosh_project_rows(&mut tape, x, 1.0, 4.0);
        let s = tape.sum_all(p);
        tape.backward(s);
        let g = tape.grad(x);
        assert!(g.all_finite());
        assert!(g.frobenius_norm() > 0.0);
    }

    #[test]
    fn config_dispatch() {
        let mut tape = Tape::new();
        let x = tape.constant(rows());
        let cfg = PluginConfig::paper_default();
        let p = project_rows(&mut tape, x, &cfg);
        assert_eq!(tape.value(p).shape(), (3, 3));
    }

    #[test]
    #[should_panic(expected = "no hyperbolic projection")]
    fn original_variant_panics() {
        let mut tape = Tape::new();
        let x = tape.constant(rows());
        let cfg = PluginConfig::paper_default().with_variant(PluginVariant::Original);
        let _ = project_rows(&mut tape, x, &cfg);
    }
}
