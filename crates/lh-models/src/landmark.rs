//! Training-free landmark feature encoder.
//!
//! The third consumer of the shared `traj_dist::landmark` mechanism: the
//! embedding of a trajectory is its distance-to-landmark feature row over
//! `embed_dim` farthest-point-selected pivot trajectories (DTW
//! closest-pair features — cheap, admissible, and defined for every
//! trajectory). No parameters are registered and `encode_batch` emits a
//! constant, so the encoder trains for free and serves as the floor row
//! of the accuracy tables: any learned model should beat a plain pivot
//! featurization, and the LH-plugin's projection/fusion stages still
//! train on top of it under the non-original variants.
//!
//! The Euclidean distance between two feature rows is *not* the landmark
//! lower bound (that is the Chebyshev gap, `‖f_a − f_b‖_∞ ≤ √k·‖·‖_2`
//! apart); the encoder only inherits the feature map, not the bound's
//! admissibility — ranking quality is whatever the geometry gives.

use crate::traits::{EncoderConfig, TrajectoryEncoder};
use lh_nn::{ParamStore, Tape, Tensor, Var};
use traj_core::{Trajectory, TrajectoryDataset};
use traj_dist::{Landmarks, MeasureKind};

/// Distance-to-landmark featurizer (see the module docs).
pub struct LandmarkEncoder {
    landmarks: Landmarks,
}

impl LandmarkEncoder {
    /// Selects `config.embed_dim` pivots from `dataset` by farthest-point
    /// selection (fewer if the dataset collapses earlier — duplicates add
    /// no spread, and [`Landmarks::select`] stops when the maxmin distance
    /// hits zero).
    pub fn new(config: EncoderConfig, dataset: &TrajectoryDataset) -> Self {
        let measure = MeasureKind::Dtw.measure();
        let landmarks = Landmarks::select(&measure, dataset.trajectories(), config.embed_dim)
            .expect("DTW supports landmark features");
        LandmarkEncoder { landmarks }
    }

    /// The selected pivot set.
    pub fn landmarks(&self) -> &Landmarks {
        &self.landmarks
    }
}

impl TrajectoryEncoder for LandmarkEncoder {
    fn name(&self) -> &'static str {
        "landmark"
    }

    fn output_dim(&self) -> usize {
        self.landmarks.k()
    }

    fn encode_batch(&self, tape: &mut Tape, _store: &ParamStore, trajs: &[&Trajectory]) -> Var {
        let k = self.landmarks.k();
        let mut data = Vec::with_capacity(trajs.len() * k);
        for t in trajs {
            data.extend(self.landmarks.features(t).into_iter().map(|f| f as f32));
        }
        tape.constant(Tensor::from_vec(trajs.len(), k, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> TrajectoryDataset {
        let trajs: Vec<Trajectory> = (0..n)
            .map(|i| {
                let o = i as f64 * 0.09;
                let pts: Vec<(f64, f64)> = (0..6)
                    .map(|s| (o + s as f64 * 0.01, (s as f64 * 0.5 + o).sin() * 0.1))
                    .collect();
                Trajectory::from_xy(&pts).unwrap()
            })
            .collect();
        TrajectoryDataset::new("synthetic", trajs)
    }

    #[test]
    fn emits_constant_feature_rows() {
        let ds = dataset(10);
        let config = EncoderConfig {
            embed_dim: 4,
            ..EncoderConfig::default()
        };
        let enc = LandmarkEncoder::new(config, &ds);
        assert_eq!(enc.name(), "landmark");
        assert_eq!(enc.output_dim(), 4);
        let store = ParamStore::new();
        let mut tape = Tape::new();
        let refs: Vec<&Trajectory> = ds.trajectories().iter().take(3).collect();
        let out = enc.encode_batch(&mut tape, &store, &refs);
        let val = tape.value(out);
        assert_eq!((val.rows(), val.cols()), (3, 4));
        // Rows are the landmark feature maps, bit-stable across calls and
        // with no parameters registered or watched.
        assert!(store.names().next().is_none(), "training-free: no params");
        assert!(tape.watched().is_empty());
        let mut tape2 = Tape::new();
        let out2 = enc.encode_batch(&mut tape2, &store, &refs);
        assert_eq!(tape.value(out).data(), tape2.value(out2).data());
        // Feature rows are nonnegative distances; a pivot's own row
        // touches zero at itself.
        assert!(tape.value(out).data().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn degenerate_dataset_collapses_dimension() {
        // All-identical trajectories: farthest-point selection stops at
        // one pivot and the encoder's width follows.
        let t = Trajectory::from_xy(&[(0.1, 0.1), (0.2, 0.2)]).unwrap();
        let ds = TrajectoryDataset::new("degenerate", vec![t.clone(), t.clone(), t]);
        let enc = LandmarkEncoder::new(EncoderConfig::default(), &ds);
        assert_eq!(enc.output_dim(), 1);
    }
}
