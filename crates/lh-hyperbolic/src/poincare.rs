//! Lorentz ↔ Poincaré-ball model conversions.
//!
//! The paper's related-work section contrasts its Lorentz formulation with
//! the Poincaré-ball approaches of Ganea et al.; these conversions make
//! that comparison concrete and let downstream users visualize hyperbolic
//! embeddings inside the unit ball. Both models describe the same space:
//! the diffeomorphism (for curvature parameter β)
//!
//! `poincare(a) = a_spatial / (a₀ + √β)` and back
//! `lorentz(y) = √β · ((1+‖y‖²), 2y) / (1−‖y‖²)`
//!
//! preserves geodesic distances, which the tests verify.

use crate::lorentz::HyperbolicPoint;

/// Converts a Lorentz-model point to Poincaré-ball coordinates
/// (`n` values with norm < 1).
pub fn to_poincare(p: &HyperbolicPoint) -> Vec<f64> {
    let c = p.coords();
    let denom = c[0] + p.beta().sqrt();
    c[1..].iter().map(|v| v / denom).collect()
}

/// Converts Poincaré-ball coordinates (norm < 1) back to the Lorentz model
/// on `H(β)`.
pub fn from_poincare(y: &[f64], beta: f64) -> HyperbolicPoint {
    let norm_sq: f64 = y.iter().map(|v| v * v).sum();
    assert!(
        norm_sq < 1.0,
        "Poincaré coordinates must lie in the unit ball"
    );
    let sqrt_beta = beta.sqrt();
    let scale = sqrt_beta / (1.0 - norm_sq);
    let mut coords = Vec::with_capacity(y.len() + 1);
    coords.push(scale * (1.0 + norm_sq));
    coords.extend(y.iter().map(|v| 2.0 * scale * v));
    HyperbolicPoint::new_unchecked(coords, beta)
}

/// Poincaré-ball geodesic distance (the standard arcosh formula), provided
/// for cross-checking the Lorentz geodesic.
pub fn poincare_distance(a: &[f64], b: &[f64], beta: f64) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: f64 = a.iter().map(|v| v * v).sum();
    let nb: f64 = b.iter().map(|v| v * v).sum();
    let diff: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let arg = 1.0 + 2.0 * diff / ((1.0 - na) * (1.0 - nb));
    beta.sqrt() * arg.max(1.0).acosh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lorentz::HyperbolicPoint;

    #[test]
    fn roundtrip_identity() {
        for beta in [0.5, 1.0, 2.0] {
            let p = HyperbolicPoint::from_spatial(&[0.7, -1.2, 0.3], beta);
            let y = to_poincare(&p);
            let back = from_poincare(&y, beta);
            for (a, b) in p.coords().iter().zip(back.coords()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b} at β={beta}");
            }
        }
    }

    #[test]
    fn ball_membership() {
        let p = HyperbolicPoint::from_spatial(&[5.0, -3.0], 1.0);
        let y = to_poincare(&p);
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1.0, "Poincaré image must be in the unit ball");
    }

    #[test]
    fn apex_maps_to_origin() {
        let apex = HyperbolicPoint::from_spatial(&[0.0, 0.0], 1.0);
        let y = to_poincare(&apex);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn geodesic_distances_agree_across_models() {
        for beta in [0.5, 1.0, 2.0] {
            let p = HyperbolicPoint::from_spatial(&[0.4, 0.9], beta);
            let q = HyperbolicPoint::from_spatial(&[-1.0, 0.2], beta);
            let lorentz_d = p.geodesic_distance(&q);
            let poincare_d = poincare_distance(&to_poincare(&p), &to_poincare(&q), beta);
            assert!(
                (lorentz_d - poincare_d).abs() < 1e-9,
                "β={beta}: {lorentz_d} vs {poincare_d}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unit ball")]
    fn rejects_out_of_ball() {
        let _ = from_poincare(&[0.9, 0.9], 1.0);
    }
}
