//! Training-pair sampling (Neutraj-style).
//!
//! For each anchor trajectory the sampler emits its `k_near` nearest
//! neighbors under the ground-truth measure plus `k_rand` random
//! trajectories, each pair carrying its ground-truth distance and a rank
//! weight (near pairs weigh more — retrieval accuracy at small k is what
//! the tables score).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use traj_dist::DistanceMatrix;

/// One training pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainPair {
    /// Anchor trajectory index.
    pub a: usize,
    /// Counterpart trajectory index.
    pub b: usize,
    /// Ground-truth (normalized) distance.
    pub target: f64,
    /// Loss weight (≥ 1; near neighbors get more).
    pub weight: f64,
}

/// Pair-sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Nearest neighbors per anchor.
    pub k_near: usize,
    /// Random counterparts per anchor.
    pub k_rand: usize,
    /// Weight multiplier for the near pairs.
    pub near_weight: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            k_near: 4,
            k_rand: 4,
            near_weight: 2.0,
        }
    }
}

/// Samples one epoch of training pairs from a symmetric ground-truth
/// matrix; anchor order is shuffled.
pub fn sample_epoch_pairs(
    matrix: &DistanceMatrix,
    config: &SamplerConfig,
    rng: &mut StdRng,
) -> Vec<TrainPair> {
    let n = matrix.rows();
    let mut anchors: Vec<usize> = (0..n).collect();
    anchors.shuffle(rng);
    let mut pairs = Vec::with_capacity(n * (config.k_near + config.k_rand));
    for &a in &anchors {
        let near = matrix.knn_of_row(a, config.k_near, Some(a));
        for b in near {
            pairs.push(TrainPair {
                a,
                b,
                target: matrix.get(a, b),
                weight: config.near_weight,
            });
        }
        for _ in 0..config.k_rand {
            let b = rng.gen_range(0..n);
            if b == a {
                continue;
            }
            pairs.push(TrainPair {
                a,
                b,
                target: matrix.get(a, b),
                weight: 1.0,
            });
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_matrix(n: usize) -> DistanceMatrix {
        // Line metric: d(i,j) = |i−j|.
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        DistanceMatrix::from_raw(n, n, data)
    }

    #[test]
    fn near_pairs_are_nearest() {
        let m = toy_matrix(10);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SamplerConfig {
            k_near: 2,
            k_rand: 0,
            near_weight: 2.0,
        };
        let pairs = sample_epoch_pairs(&m, &cfg, &mut rng);
        assert_eq!(pairs.len(), 20);
        for p in &pairs {
            assert!(p.target <= 2.0, "near pair too far: {p:?}");
            assert_eq!(p.weight, 2.0);
        }
    }

    #[test]
    fn targets_match_matrix() {
        let m = toy_matrix(8);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = sample_epoch_pairs(&m, &SamplerConfig::default(), &mut rng);
        for p in &pairs {
            assert_eq!(p.target, m.get(p.a, p.b));
            assert_ne!(p.a, p.b, "self-pairs are useless supervision");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let m = toy_matrix(8);
        let cfg = SamplerConfig::default();
        let a = sample_epoch_pairs(&m, &cfg, &mut StdRng::seed_from_u64(3));
        let b = sample_epoch_pairs(&m, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn epochs_differ() {
        let m = toy_matrix(8);
        let cfg = SamplerConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let e1 = sample_epoch_pairs(&m, &cfg, &mut rng);
        let e2 = sample_epoch_pairs(&m, &cfg, &mut rng);
        assert_ne!(e1, e2, "random halves must resample across epochs");
    }
}
