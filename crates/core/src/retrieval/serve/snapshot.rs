//! Immutable point-in-time views of a [`ServingStore`](super::ServingStore).
//!
//! A [`Snapshot`] is what readers actually query: a shared compacted
//! **base** segment (flat or with the pivot index attached), a copy of the
//! current **delta** segment (rows upserted since the last compaction),
//! and tombstone sets over both. Snapshots are published behind
//! `Arc` pointers, so cloning one is O(1) for the base (shared) and
//! O(delta) for the mutable tail — bounded by the compaction threshold.
//!
//! # Bit-identity of the overlay
//!
//! [`Snapshot::knn`] must return *exactly* what a flat scan of the
//! materialized live rows ([`Snapshot::to_flat`]) returns — bit-for-bit,
//! including tie-breaks and NaN ordering. The argument:
//!
//! * **Distances** bit-match because both paths run the same
//!   monomorphized kernels over the same `f32` buffer bits — the base
//!   rows are scanned in place, and [`EmbeddingStore::push_row_from`]
//!   materializes rows by bytewise copy.
//! * **Selection** bit-matches because the overlay offers heap keys that
//!   map *strictly monotonically* onto the materialized row ordinals:
//!   base row `r` gets key `r`, delta row `j` gets key `n_base + j`, and
//!   `to_flat` emits live base rows in row order followed by live delta
//!   rows in row order. `TopK` selects by `(distance, key)`; a strictly
//!   monotone key remap preserves that order, so the same rows survive
//!   with the same ranks.
//! * **Tombstones** are excluded *before* any heap offer (a dead row must
//!   never occupy a slot a live row deserved), and inside the index probe
//!   the skip happens before the bounds fire — skipping only raises the
//!   running k-th-best τ, so every triangle-inequality and landmark bound
//!   stays admissible (see `IndexedStore::knn_topk_masked`).
//!
//! `tests/serving_store.rs` enforces this property end-to-end, and the
//! serve bench re-asserts it on sampled queries before every ledger
//! append.

use super::super::index::IndexedStore;
use super::super::kernel;
use super::super::store::EmbeddingStore;
use super::ServeHit;
use std::sync::Arc;
use traj_core::parallel::{default_threads, parallel_map};
use traj_core::topk::TopK;

/// The compacted base segment: a flat store, or one served through the
/// pivot index (metric variants only — the fused distance admits no exact
/// bound, so its base stays flat and is scanned).
// One `Base` exists per compaction, always behind an `Arc` — the variant
// size gap never multiplies across rows, and boxing would add a pointer
// chase to every probe.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Base {
    /// Flat base: scanned with the monomorphized kernels.
    Flat(EmbeddingStore),
    /// Indexed base: probed with triangle-inequality + landmark bounds,
    /// masked by the tombstone set.
    Indexed(IndexedStore),
}

impl Base {
    /// The underlying embedding store.
    pub(crate) fn store(&self) -> &EmbeddingStore {
        match self {
            Base::Flat(s) => s,
            Base::Indexed(ix) => ix.store(),
        }
    }

    /// Whether the pivot index is attached.
    pub(crate) fn is_indexed(&self) -> bool {
        matches!(self, Base::Indexed(_))
    }
}

/// An immutable point-in-time view of the serving store. See the module
/// docs for the bit-identity contract.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Compacted base segment, shared across snapshots of one epoch run.
    pub(crate) base: Arc<Base>,
    /// External id of each base row, parallel to the base store.
    pub(crate) base_ids: Arc<Vec<u64>>,
    /// Tombstoned base rows, ascending.
    pub(crate) base_dead: Vec<u32>,
    /// Delta segment: rows upserted since the last compaction.
    pub(crate) delta: EmbeddingStore,
    /// External id of each delta row, parallel to the delta store.
    pub(crate) delta_ids: Vec<u64>,
    /// Tombstoned delta rows (superseded upserts, removals), ascending.
    pub(crate) delta_dead: Vec<u32>,
    /// Publication epoch: bumped by every successful write or compaction.
    pub(crate) epoch: u64,
}

/// Expands a sorted tombstone list into a dense mask (`None` when there
/// is nothing to mask — the common case pays nothing).
fn dead_mask(len: usize, dead: &[u32]) -> Option<Vec<bool>> {
    if dead.is_empty() {
        return None;
    }
    let mut mask = vec![false; len];
    for &d in dead {
        mask[d as usize] = true;
    }
    Some(mask)
}

impl Snapshot {
    /// Publication epoch of this view.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live rows (base + delta, tombstones excluded).
    pub fn len(&self) -> usize {
        self.base_ids.len() - self.base_dead.len() + self.delta_ids.len() - self.delta_dead.len()
    }

    /// Whether no live row exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows in the delta segment (including tombstoned ones) — the
    /// overlay-scan cost of this view.
    pub fn delta_rows(&self) -> usize {
        self.delta_ids.len()
    }

    /// Whether the base segment is served through the pivot index.
    pub fn base_indexed(&self) -> bool {
        self.base.is_indexed()
    }

    /// External ids of every live row, in snapshot order (live base rows
    /// in row order, then live delta rows in row order).
    pub fn live_ids(&self) -> Vec<u64> {
        let base_mask = dead_mask(self.base_ids.len(), &self.base_dead);
        let delta_mask = dead_mask(self.delta_ids.len(), &self.delta_dead);
        let mut ids = Vec::with_capacity(self.len());
        for (r, &id) in self.base_ids.iter().enumerate() {
            if base_mask.as_ref().map_or(true, |m| !m[r]) {
                ids.push(id);
            }
        }
        for (j, &id) in self.delta_ids.iter().enumerate() {
            if delta_mask.as_ref().map_or(true, |m| !m[j]) {
                ids.push(id);
            }
        }
        ids
    }

    /// Size of this snapshot's heap key space: base rows `0..n_base`,
    /// delta rows `n_base..n_base + n_delta` (dead rows hold their key
    /// but are never offered). The sharded merge offsets each shard's
    /// keys by the key spaces before it, keeping the concatenated key
    /// order strictly monotone onto the concatenated [`Snapshot::to_flat`]
    /// row order.
    pub(crate) fn key_space(&self) -> usize {
        self.base.store().len() + self.delta.len()
    }

    /// Top-k nearest live rows to query row `qi` of `queries`, as
    /// external ids with model distances. Bit-identical to a flat scan of
    /// [`Snapshot::to_flat`] (see the module docs).
    pub fn knn(&self, queries: &EmbeddingStore, qi: usize, k: usize) -> Vec<ServeHit> {
        self.knn_keyed(queries, qi, k)
            .into_iter()
            .map(|(_, id, distance)| ServeHit {
                id,
                distance: distance as f32,
            })
            .collect()
    }

    /// [`Snapshot::knn`] before the `f32` narrowing: sorted
    /// `(heap key, external id, f64 distance)` triples. This is the
    /// sharded-store merge surface — the merge must compare at the full
    /// `f64` precision the heaps selected with (narrowing first could
    /// reorder hits whose distances collide only in `f32`), and it
    /// tie-breaks on the heap key so the cross-shard order stays the
    /// strictly monotone remap of the concatenated flat-scan order.
    pub(crate) fn knn_keyed(
        &self,
        queries: &EmbeddingStore,
        qi: usize,
        k: usize,
    ) -> Vec<(usize, u64, f64)> {
        let base_mask = dead_mask(self.base.store().len(), &self.base_dead);
        let delta_mask = dead_mask(self.delta.len(), &self.delta_dead);
        self.knn_masked(queries, qi, k, base_mask.as_deref(), delta_mask.as_deref())
    }

    /// Batched [`Snapshot::knn`], parallel across queries. Masks are
    /// expanded once and shared by every query.
    pub fn knn_batch(&self, queries: &EmbeddingStore, k: usize) -> Vec<Vec<ServeHit>> {
        let base_mask = dead_mask(self.base.store().len(), &self.base_dead);
        let delta_mask = dead_mask(self.delta.len(), &self.delta_dead);
        let nq = queries.len();
        parallel_map(nq, default_threads(nq), |qi| {
            self.knn_masked(queries, qi, k, base_mask.as_deref(), delta_mask.as_deref())
                .into_iter()
                .map(|(_, id, distance)| ServeHit {
                    id,
                    distance: distance as f32,
                })
                .collect()
        })
    }

    fn knn_masked(
        &self,
        queries: &EmbeddingStore,
        qi: usize,
        k: usize,
        base_mask: Option<&[bool]>,
        delta_mask: Option<&[bool]>,
    ) -> Vec<(usize, u64, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let n_base = self.base.store().len();
        let mut top = match &*self.base {
            Base::Indexed(ix) => ix.knn_topk_masked(queries, qi, k, base_mask).0,
            Base::Flat(store) => {
                let mut top = TopK::new(k);
                if !store.is_empty() {
                    kernel::scan_offer_masked(store, queries, qi, base_mask, 0, &mut top);
                }
                top
            }
        };
        if !self.delta.is_empty() {
            kernel::scan_offer_masked(&self.delta, queries, qi, delta_mask, n_base, &mut top);
        }
        top.into_sorted()
            .into_iter()
            .map(|(key, distance)| {
                let id = if key < n_base {
                    self.base_ids[key]
                } else {
                    self.delta_ids[key - n_base]
                };
                (key, id, distance)
            })
            .collect()
    }

    /// Materializes the live rows into one flat store (live base rows in
    /// row order, then live delta rows in row order) with their external
    /// ids. This is the reference the bit-identity contract is stated
    /// against, the input to compaction, and the verification surface the
    /// serve bench flat-scans.
    pub fn to_flat(&self) -> (EmbeddingStore, Vec<u64>) {
        let base_mask = dead_mask(self.base_ids.len(), &self.base_dead);
        let delta_mask = dead_mask(self.delta_ids.len(), &self.delta_dead);
        let base = self.base.store();
        let mut store = base.empty_like();
        let mut ids = Vec::with_capacity(self.len());
        for (r, &id) in self.base_ids.iter().enumerate() {
            if base_mask.as_ref().map_or(true, |m| !m[r]) {
                store.push_row_from(base, r);
                ids.push(id);
            }
        }
        for (j, &id) in self.delta_ids.iter().enumerate() {
            if delta_mask.as_ref().map_or(true, |m| !m[j]) {
                store.push_row_from(&self.delta, j);
                ids.push(id);
            }
        }
        (store, ids)
    }
}
