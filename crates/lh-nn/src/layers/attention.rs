//! Scaled dot-product self-attention over one sequence, plus the
//! co-attention variant ST2Vec-style models use to fuse spatial and
//! temporal streams.

use crate::init;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use rand::rngs::StdRng;

/// Single-head self-attention: `softmax(QKᵀ/√d)·V` with learned `W_q, W_k,
/// W_v` projections.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    name: String,
    dim: usize,
}

impl SelfAttention {
    /// Registers projection matrices (`d×d` each).
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        store: &mut ParamStore,
        rng: &mut StdRng,
    ) -> Self {
        let name = name.into();
        for suffix in ["wq", "wk", "wv"] {
            store.get_or_insert_with(&format!("{name}.{suffix}"), || {
                init::xavier_uniform(dim, dim, rng)
            });
        }
        SelfAttention { name, dim }
    }

    /// Feature width `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Self-attention over a `T×d` sequence matrix → `T×d`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        self.attend(tape, store, x, x)
    }

    /// Co-attention: queries from `q_seq (Tq×d)`, keys/values from
    /// `kv_seq (Tk×d)` → `Tq×d`.
    pub fn attend(&self, tape: &mut Tape, store: &ParamStore, q_seq: Var, kv_seq: Var) -> Var {
        let wq = tape.watch(store, &format!("{}.wq", self.name));
        let wk = tape.watch(store, &format!("{}.wk", self.name));
        let wv = tape.watch(store, &format!("{}.wv", self.name));
        let q = tape.matmul(q_seq, wq);
        let k = tape.matmul(kv_seq, wk);
        let v = tape.matmul(kv_seq, wv);
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scaled = tape.scale(scores, 1.0 / (self.dim as f32).sqrt());
        let attn = tape.softmax_rows(scaled);
        tape.matmul(attn, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn setup(dim: usize) -> (ParamStore, SelfAttention) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let att = SelfAttention::new("att", dim, &mut store, &mut rng);
        (store, att)
    }

    #[test]
    fn output_shape_matches_queries() {
        let (store, att) = setup(3);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(5, 3));
        let y = att.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));

        let q = tape.constant(Tensor::zeros(2, 3));
        let kv = tape.constant(Tensor::zeros(7, 3));
        let co = att.attend(&mut tape, &store, q, kv);
        assert_eq!(tape.value(co).shape(), (2, 3));
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        // With V = values, each output row lies in the convex hull of the
        // value rows; for a single kv row the output equals that row's
        // projection regardless of the query.
        let (store, att) = setup(2);
        let mut tape = Tape::new();
        let q = tape.constant(Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 5.0, -5.0]));
        let kv = tape.constant(Tensor::from_vec(1, 2, vec![0.3, 0.7]));
        let y = tape_out(&mut tape, &att, &store, q, kv);
        let v0 = tape.value(y).row(0).to_vec();
        for r in 1..3 {
            for (a, b) in tape.value(y).row(r).iter().zip(&v0) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    fn tape_out(tape: &mut Tape, att: &SelfAttention, store: &ParamStore, q: Var, kv: Var) -> Var {
        att.attend(tape, store, q, kv)
    }

    #[test]
    fn trainable_end_to_end() {
        let (mut store, att) = setup(2);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..80 {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(2, 2, vec![0.5, -0.5, 1.0, 0.5]));
            let y = att.forward(&mut tape, &store, x);
            let pooled = tape.row_sum(y);
            let target = tape.constant(Tensor::from_vec(2, 1, vec![0.7, -0.2]));
            let d = tape.sub(pooled, target);
            let sq = tape.square(d);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            opt.step(&mut store, &tape);
            last = tape.value(loss).item();
        }
        assert!(last < 0.01, "attention failed to fit: {last}");
    }
}
