//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without registry access, so the
//! external dependencies are vendored as minimal shims under `shims/`
//! (see the workspace `Cargo.toml`). This shim covers exactly the subset
//! of the `rand` 0.8 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Determinism is part of the contract: every experiment binary seeds its
//! RNG explicitly, and the same seed must reproduce the same tables on any
//! machine. Swapping this shim for the real `rand` crate changes the
//! stream values (the real `StdRng` is ChaCha12) but not any API.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`). Panics on an empty range, like `rand` 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        next_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform `f64` in `[0, 1)` using the top 53 bits of one output word.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample one value of `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The largest `f32` strictly below `x` (finite positive-span use only).
fn next_down_f32(x: f32) -> f32 {
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits - 1)
    } else if x < 0.0 {
        f32::from_bits(bits + 1)
    } else {
        -f32::from_bits(1)
    }
}

/// The largest `f64` strictly below `x` (finite positive-span use only).
fn next_down_f64(x: f64) -> f64 {
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else if x < 0.0 {
        f64::from_bits(bits + 1)
    } else {
        -f64::from_bits(1)
    }
}

macro_rules! float_sample_range {
    ($($t:ty => $next_down:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (next_f64(rng) as $t) * (self.end - self.start);
                // `start + u·span` can round up to `end`; keep the range
                // half-open as the rand 0.8 contract requires.
                if v >= self.end {
                    $next_down(self.end)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32 => next_down_f32, f64 => next_down_f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same trait surface, different
    /// (but still high-quality, seed-stable) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn half_open_float_range_excludes_end() {
        // Force the rounding edge: a draw of u = 1 - 2⁻⁵³ lands within
        // f32 rounding distance of `end` and must be pulled back below it.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let v32: f32 = rng.gen_range(-1.0f32..1.0);
        assert!(v32 < 1.0, "f32 draw hit the excluded bound: {v32}");
        let v64: f64 = rng.gen_range(0.0f64..1.0);
        assert!(v64 < 1.0, "f64 draw hit the excluded bound: {v64}");
        assert!(crate::next_down_f32(0.0) < 0.0);
        assert!(crate::next_down_f64(1.0) < 1.0);
    }

    #[test]
    fn float_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
