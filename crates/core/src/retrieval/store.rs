//! Flat embedding storage and the single-query scan surface.
//!
//! [`EmbeddingStore`] owns the three flat `f32` buffers (Euclidean,
//! hyperbolic, fusion factors) for one trajectory collection. Scans are
//! executed by the monomorphized kernels in [`super::kernel`]; the
//! [`EmbeddingStore::knn`] method is the thin single-query compatibility
//! wrapper over that engine, and [`super::shard::ShardedStore`] is the
//! batched parallel surface.

use super::kernel;
use crate::config::PluginVariant;
use serde::{Deserialize, Serialize};
use traj_core::parallel::{default_threads, parallel_map};
use traj_core::topk::TopK;

/// Flat embedding storage for one trajectory collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingStore {
    pub(crate) dim: usize,
    pub(crate) variant: PluginVariant,
    pub(crate) beta: f32,
    pub(crate) factor_dim: Option<usize>,
    pub(crate) n: usize,
    pub(crate) eu: Vec<f32>,
    pub(crate) hyper: Vec<f32>,
    pub(crate) factors: Vec<f32>,
}

/// One retrieval hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalResult {
    /// Database row index.
    pub index: usize,
    /// Model distance.
    pub distance: f32,
}

impl EmbeddingStore {
    /// Empty store for embeddings of width `dim`.
    pub fn new(dim: usize, variant: PluginVariant, beta: f32, factor_dim: Option<usize>) -> Self {
        EmbeddingStore {
            dim,
            variant,
            beta,
            factor_dim: if variant.uses_fusion() {
                factor_dim
            } else {
                None
            },
            n: 0,
            eu: Vec::new(),
            hyper: Vec::new(),
            factors: Vec::new(),
        }
    }

    /// Appends one trajectory's embeddings. `hyper` must be present iff
    /// the variant is hyperbolic; `factors` iff fusion is active.
    pub fn push(&mut self, eu: &[f32], hyper: Option<&[f32]>, factors: Option<&[f32]>) {
        assert_eq!(eu.len(), self.dim, "euclidean width mismatch");
        self.eu.extend_from_slice(eu);
        if self.variant.uses_hyperbolic() {
            let h = hyper.expect("hyperbolic row required for this variant");
            assert_eq!(h.len(), self.dim + 1, "hyperbolic width mismatch");
            self.hyper.extend_from_slice(h);
        }
        if let Some(f_dim) = self.factor_dim {
            let f = factors.expect("factor row required for fusion variant");
            assert_eq!(f.len(), 2 * f_dim, "factor width mismatch");
            self.factors.extend_from_slice(f);
        }
        self.n += 1;
    }

    /// Appends row `i` of `src`, which must share this store's layout
    /// (variant, width, factor width). The copy is bytewise over the flat
    /// `f32` buffers, so the appended row serves bit-identical distances
    /// — the serving tier's compaction and snapshot materialization
    /// depend on this.
    pub fn push_row_from(&mut self, src: &EmbeddingStore, i: usize) {
        assert_eq!(self.variant, src.variant, "variant mismatch");
        assert_eq!(self.dim, src.dim, "width mismatch");
        assert_eq!(self.factor_dim, src.factor_dim, "factor width mismatch");
        self.eu.extend_from_slice(src.eu_row(i));
        if self.variant.uses_hyperbolic() {
            self.hyper.extend_from_slice(src.hyper_row(i));
        }
        if self.factor_dim.is_some() {
            self.factors.extend_from_slice(src.factor_row(i));
        }
        self.n += 1;
    }

    /// An empty store with this store's exact layout (variant, width,
    /// curvature, factor width) — the template the serving tier grows
    /// delta segments and compacted bases from.
    pub fn empty_like(&self) -> EmbeddingStore {
        EmbeddingStore::new(self.dim, self.variant, self.beta, self.factor_dim)
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding width `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Active plugin variant.
    pub fn variant(&self) -> PluginVariant {
        self.variant
    }

    /// Curvature parameter β.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// Factor embedding width, when fusion is active.
    pub fn factor_dim(&self) -> Option<usize> {
        self.factor_dim
    }

    /// Whether hyperbolic rows are stored.
    pub fn has_hyperbolic(&self) -> bool {
        !self.hyper.is_empty() || (self.variant.uses_hyperbolic() && self.n == 0)
    }

    /// Whether factor rows are stored.
    pub fn has_factors(&self) -> bool {
        !self.factors.is_empty() || (self.factor_dim.is_some() && self.n == 0)
    }

    /// Euclidean embedding row `i`.
    pub fn eu_row(&self, i: usize) -> &[f32] {
        &self.eu[i * self.dim..(i + 1) * self.dim]
    }

    /// Hyperbolic row `i` (panics when absent).
    pub fn hyper_row(&self, i: usize) -> &[f32] {
        let w = self.dim + 1;
        &self.hyper[i * w..(i + 1) * w]
    }

    /// Factor row `i` (panics when absent).
    pub fn factor_row(&self, i: usize) -> &[f32] {
        let w = 2 * self.factor_dim.expect("factors absent");
        &self.factors[i * w..(i + 1) * w]
    }

    /// Total payload bytes (the Table V memory metric).
    pub fn payload_bytes(&self) -> usize {
        (self.eu.len() + self.hyper.len() + self.factors.len()) * std::mem::size_of::<f32>()
    }

    /// Model distance between row `qi` of `queries` and row `di` of
    /// `self`, per the active variant.
    ///
    /// One-off surface: binds a kernel per call. Scans should use
    /// [`EmbeddingStore::knn`] or
    /// [`ShardedStore::knn_batch`](super::shard::ShardedStore::knn_batch),
    /// which bind once per query.
    pub fn distance_from(&self, queries: &EmbeddingStore, qi: usize, di: usize) -> f32 {
        debug_assert_eq!(self.variant, queries.variant);
        kernel::distance_one(self, queries, qi, di)
    }

    /// Full distance row from query `qi` to every database row
    /// (monomorphized kernel scan).
    pub fn distance_row_from(&self, queries: &EmbeddingStore, qi: usize) -> Vec<f64> {
        kernel::distance_row(self, queries, qi)
    }

    /// All distance rows from every query to every database row, computed
    /// in parallel across queries. This is the batched evaluation surface
    /// `lh-core::pipeline` ranks with.
    pub fn distance_rows_from(&self, queries: &EmbeddingStore) -> Vec<Vec<f64>> {
        let nq = queries.len();
        parallel_map(nq, default_threads(nq), |qi| {
            kernel::distance_row(self, queries, qi)
        })
    }

    /// Top-k retrieval for query row `qi` of `queries`.
    ///
    /// Thin compatibility wrapper over the kernel engine: a monomorphized
    /// O(n log k) bounded-heap scan, deterministic under ties and
    /// non-finite distances (`total_cmp` + index tie-break). Sharded /
    /// batched serving lives on [`super::shard::ShardedStore`].
    pub fn knn(&self, queries: &EmbeddingStore, qi: usize, k: usize) -> Vec<RetrievalResult> {
        results_from_topk(kernel::scan_topk(self, queries, qi, k))
    }

    /// Legacy top-k: materializes and fully sorts all n candidates with a
    /// per-pair variant dispatch, O(n log n). Retained as the regression
    /// baseline the benches compare the kernel engine against; new code
    /// should call [`EmbeddingStore::knn`].
    pub fn knn_full_sort(
        &self,
        queries: &EmbeddingStore,
        qi: usize,
        k: usize,
    ) -> Vec<RetrievalResult> {
        let mut hits: Vec<RetrievalResult> = (0..self.n)
            .map(|di| RetrievalResult {
                index: di,
                distance: self.distance_from(queries, qi, di),
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.index.cmp(&b.index))
        });
        hits.truncate(k);
        hits
    }
}

/// Converts a selector's survivors into the public result type.
pub(crate) fn results_from_topk(top: TopK) -> Vec<RetrievalResult> {
    top.into_sorted()
        .into_iter()
        .map(|(index, distance)| RetrievalResult {
            index,
            distance: distance as f32,
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[allow(clippy::approx_constant)] // the test rows intentionally lie on H(1): x0 = √(‖x‖²+1)
    pub(crate) fn store_with_rows(variant: PluginVariant) -> EmbeddingStore {
        let mut s = EmbeddingStore::new(2, variant, 1.0, Some(2));
        let rows: [([f32; 2], [f32; 3], [f32; 4]); 3] = [
            ([0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]),
            ([1.0, 0.0], [1.41421, 1.0, 0.0], [2.0, 1.0, 0.5, 0.5]),
            ([0.0, 3.0], [3.16228, 0.0, 3.0], [0.5, 0.5, 2.0, 2.0]),
        ];
        for (eu, hy, f) in rows {
            let hyper = variant.uses_hyperbolic().then_some(&hy[..]);
            let factors = variant.uses_fusion().then_some(&f[..]);
            s.push(&eu, hyper, factors);
        }
        s
    }

    #[test]
    fn knn_euclidean_orders_correctly() {
        let s = store_with_rows(PluginVariant::Original);
        let hits = s.knn(&s, 0, 2);
        assert_eq!(hits[0].index, 0); // itself at distance 0
        assert_eq!(hits[1].index, 1); // (1,0) closer than (0,3)
        assert!(hits[1].distance > hits[0].distance);
    }

    #[test]
    fn knn_matches_full_sort_baseline() {
        for variant in PluginVariant::ABLATION {
            let s = store_with_rows(variant);
            for k in [0, 1, 2, 3, 10] {
                assert_eq!(
                    s.knn(&s, 1, k),
                    s.knn_full_sort(&s, 1, k),
                    "{} k={k}",
                    variant.name()
                );
            }
        }
    }

    #[test]
    #[allow(clippy::approx_constant)] // the single row lies on H(1): x0 = √2
    fn knn_edge_cases() {
        for variant in PluginVariant::ABLATION {
            let s = store_with_rows(variant);
            // k = 0: nothing requested, nothing returned.
            assert!(s.knn(&s, 0, 0).is_empty(), "{}", variant.name());
            // k ≥ n: every row comes back, fully ordered, no padding.
            let all = s.knn(&s, 0, s.len() + 5);
            assert_eq!(all.len(), s.len());
            for w in all.windows(2) {
                assert!(w[0].distance.total_cmp(&w[1].distance).is_le());
            }
            // Empty store: any query gets an empty result.
            let empty = EmbeddingStore::new(2, variant, 1.0, variant.uses_fusion().then_some(2));
            assert!(empty.knn(&s, 0, 3).is_empty());
            assert!(empty.knn(&s, 0, 0).is_empty());
            // Single-row store: the one row is the whole answer.
            let mut single =
                EmbeddingStore::new(2, variant, 1.0, variant.uses_fusion().then_some(2));
            single.push(
                &[1.0, 0.0],
                variant
                    .uses_hyperbolic()
                    .then_some(&[1.41421, 1.0, 0.0][..]),
                variant.uses_fusion().then_some(&[2.0, 1.0, 0.5, 0.5][..]),
            );
            let hits = single.knn(&s, 0, 4);
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].index, 0);
            assert!(single.knn(&s, 0, 0).is_empty());
        }
    }

    #[test]
    fn knn_deterministic_with_nan_rows() {
        let mut s = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        s.push(&[0.0, 0.0], None, None);
        s.push(&[f32::NAN, 0.0], None, None);
        s.push(&[1.0, 0.0], None, None);
        s.push(&[f32::NAN, 2.0], None, None);
        let hits = s.knn(&s, 0, 4);
        let order: Vec<usize> = hits.iter().map(|h| h.index).collect();
        // NaN distances sort after all finite ones, tie-broken by index.
        assert_eq!(order, vec![0, 2, 1, 3]);
        // Byte-identical to the legacy baseline (f32 `==` is false for
        // NaN, so compare bit patterns).
        let bits = |hits: &[RetrievalResult]| -> Vec<(usize, u32)> {
            hits.iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect()
        };
        assert_eq!(bits(&hits), bits(&s.knn_full_sort(&s, 0, 4)));
    }

    #[test]
    fn variant_changes_distances() {
        let eu = store_with_rows(PluginVariant::Original);
        let fu = store_with_rows(PluginVariant::FusionDist);
        let d_eu = eu.distance_from(&eu, 0, 2);
        let d_fu = fu.distance_from(&fu, 0, 2);
        assert!((d_eu - 3.0).abs() < 1e-5);
        assert_ne!(d_eu, d_fu);
    }

    #[test]
    fn payload_accounting() {
        let eu = store_with_rows(PluginVariant::Original);
        let lo = store_with_rows(PluginVariant::LorentzCosh);
        let fu = store_with_rows(PluginVariant::FusionDist);
        assert_eq!(eu.payload_bytes(), 3 * 2 * 4);
        assert_eq!(lo.payload_bytes(), 3 * (2 + 3) * 4);
        assert_eq!(fu.payload_bytes(), 3 * (2 + 3 + 4) * 4);
    }

    #[test]
    fn distance_row_matches_pointwise() {
        let s = store_with_rows(PluginVariant::FusionDist);
        let row = s.distance_row_from(&s, 1);
        for (di, &d) in row.iter().enumerate() {
            assert!((d - s.distance_from(&s, 1, di) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn batched_rows_match_single_rows() {
        for variant in PluginVariant::ABLATION {
            let s = store_with_rows(variant);
            let all = s.distance_rows_from(&s);
            assert_eq!(all.len(), s.len());
            for (qi, row) in all.iter().enumerate() {
                assert_eq!(row, &s.distance_row_from(&s, qi), "{}", variant.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "euclidean width mismatch")]
    fn push_validates_width() {
        let mut s = EmbeddingStore::new(3, PluginVariant::Original, 1.0, None);
        s.push(&[1.0, 2.0], None, None);
    }
}
