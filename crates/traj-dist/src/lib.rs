//! Classical trajectory similarity/distance functions.
//!
//! These are the ground-truth oracles `Dist*(·,·)` the paper's embedding
//! models regress against. Crucially, several of them (DTW, SSPD, EDR, TP,
//! DITA) are **not metrics**: they violate the triangle inequality on real
//! trajectory populations, which is the entire motivation of the LH-plugin.
//!
//! All dynamic-programming measures use rolling row buffers (O(min(n,m))
//! memory) and `f64` accumulation. [`matrix`] fills full and rectangular
//! pairwise matrices in parallel through the [`MatrixBuilder`] pipeline:
//! dynamically scheduled pair batches (balanced across the triangular
//! workload), opt-in admissible early-abandon pruning for the DP
//! measures, persistent fingerprint-keyed checkpoints, and a
//! wavefront-batched execution tier ([`matrix::wavefront`]) that runs
//! length-bucketed DTW/ERP/EDR pairs in SIMD lockstep along DP
//! anti-diagonals — bit-identical to the scalar kernels.

pub mod dtw;
pub mod edr;
pub mod erp;
pub mod frechet;
pub mod hausdorff;
pub mod landmark;
pub mod lcss;
pub mod matrix;
pub mod measure;
pub mod sspd;
pub mod st;

pub use dtw::dtw;
pub use edr::edr;
pub use erp::erp;
pub use frechet::discrete_frechet;
pub use hausdorff::hausdorff;
pub use landmark::{LandmarkLowerBound, Landmarks};
pub use lcss::lcss_distance;
pub use matrix::{
    batch_distances, cross_matrix, pairwise_matrix, BatchPlan, BuildReport, CacheError,
    CacheOutcome, DistanceMatrix, MatrixBuild, MatrixBuilder, PruneStage, Schedule,
    DEFAULT_LANDMARKS,
};
pub use measure::{Measure, MeasureKind, PrunedDistance};
pub use sspd::sspd;
pub use st::{dita, tp};
