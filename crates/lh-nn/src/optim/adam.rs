//! Adam (Kingma & Ba, 2015) with bias correction.

use super::{collect_clipped_grads, Optimizer};
use crate::params::ParamStore;
use crate::tape::Tape;
use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Adam optimizer state.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper-style default 1e-3).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional global-norm gradient clip.
    pub clip_norm: Option<f32>,
    t: u64,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters and a global clip of 5 (the
    /// clip keeps early LSTM training stable at our small batch sizes).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, tape: &Tape) {
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for (name, grad) in collect_clipped_grads(tape, self.clip_norm) {
            let m = self
                .m
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
            let v = self
                .v
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
            let p = store.get_mut(&name);
            for i in 0..grad.len() {
                let g = grad.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(1, 2, vec![-4.0, 7.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let w = tape.watch(&store, "w");
            let target = tape.constant(Tensor::from_vec(1, 2, vec![1.0, -2.0]));
            let d = tape.sub(w, target);
            let sq = tape.square(d);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            opt.step(&mut store, &tape);
        }
        let w = store.get("w");
        assert!((w.get(0, 0) - 1.0).abs() < 1e-2, "w0={}", w.get(0, 0));
        assert!((w.get(0, 1) + 2.0).abs() < 1e-2, "w1={}", w.get(0, 1));
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn handles_sparse_embedding_grads() {
        // Rows never selected must stay untouched.
        let mut store = ParamStore::new();
        store.insert(
            "emb",
            Tensor::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]),
        );
        let before_row2 = store.get("emb").row(2).to_vec();
        let mut opt = Adam::new(0.05);
        for _ in 0..10 {
            let mut tape = Tape::new();
            let emb = tape.watch(&store, "emb");
            let sel = tape.select_rows(emb, &[0, 1]);
            let sq = tape.square(sel);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            opt.step(&mut store, &tape);
        }
        assert_eq!(store.get("emb").row(2), &before_row2[..]);
        assert!(store.get("emb").get(0, 0) < 1.0);
    }
}
