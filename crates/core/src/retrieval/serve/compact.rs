//! Compaction: folding the delta segment and tombstones into a fresh
//! base segment, re-attaching the pivot index.
//!
//! Compaction materializes the live rows of a snapshot *in snapshot
//! order* (live base rows in row order, then live delta rows — exactly
//! [`Snapshot::to_flat`]'s order, by construction through the same
//! `push_row_from` bytewise copies), assigns the result as the new base,
//! and rebuilds the pivot index over it when the variant's bound space is
//! metric. The fused variant is non-metric (the paper's thesis) and
//! admits no exact bound, so its compacted base stays flat and is served
//! by the masked scan.
//!
//! Because materialization is a bytewise row copy and the new base has no
//! tombstones and an empty delta, queries against the compacted snapshot
//! remain bit-identical to queries against the pre-compaction snapshot:
//! same candidate set, same `f32` distance bits, and a key order that is
//! the same monotone remap of live ordinals on both sides.

use super::super::index::bound::BoundSpace;
use super::super::index::IndexedStore;
use super::super::store::EmbeddingStore;
use super::snapshot::{Base, Snapshot};
use super::ServingOptions;
use std::sync::Arc;

/// Result of folding one snapshot into a fresh base.
pub(crate) struct CompactedBase {
    /// The new base segment, indexed when the options and bound space
    /// allow it.
    pub base: Arc<Base>,
    /// External ids of the new base rows, in row order.
    pub ids: Arc<Vec<u64>>,
}

/// Materializes `snap`'s live rows into a new base segment. Pure with
/// respect to the serving store — the caller swaps the result in under
/// the writer lock and handles persistence.
pub(crate) fn compact_snapshot(snap: &Snapshot, opts: &ServingOptions) -> CompactedBase {
    let (store, ids) = snap.to_flat();
    CompactedBase {
        base: Arc::new(wrap_base(store, opts)),
        ids: Arc::new(ids),
    }
}

/// Wraps a flat store as the serving base, attaching the pivot index when
/// requested and admissible (metric bound space only — an index over the
/// fused distance could not prune exactly, so serving it would only add
/// probe overhead to what is still a full scan).
pub(crate) fn wrap_base(store: EmbeddingStore, opts: &ServingOptions) -> Base {
    let metric = BoundSpace::for_variant(store.variant(), store.beta()).is_metric();
    if opts.index && metric && !store.is_empty() {
        Base::Indexed(IndexedStore::build(store, opts.index_params))
    } else {
        Base::Flat(store)
    }
}
