//! The Lorentz inner product, hyperbolic membership, and distances.

use serde::{Deserialize, Serialize};

/// Lorentz (Minkowski) inner product `⟨a,b⟩ = −a₀b₀ + Σ_{i≥1} aᵢbᵢ`.
///
/// Panics in debug builds on dimension mismatch.
#[inline]
pub fn lorentz_inner(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    debug_assert!(!a.is_empty());
    let mut s = -a[0] * b[0];
    for i in 1..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Lorentz distance `d_Lo(a,b) = |⟨a,b⟩| − β` (paper Definition 3).
#[inline]
pub fn lorentz_distance(a: &[f64], b: &[f64], beta: f64) -> f64 {
    lorentz_inner(a, b).abs() - beta
}

/// Geodesic (Riemannian) distance on H(β): `√β · arcosh(−⟨a,b⟩/β)`.
///
/// Included as a reference: the geodesic distance *is* a metric, which is
/// why the paper's non-metric Lorentz distance — not the geodesic — is the
/// right similarity surrogate for triangle-violating ground truths.
pub fn geodesic_distance(a: &[f64], b: &[f64], beta: f64) -> f64 {
    let ratio = (-lorentz_inner(a, b) / beta).max(1.0);
    beta.sqrt() * ratio.acosh()
}

/// A point on the hyperboloid `H(β)`, kept consistent by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperbolicPoint {
    coords: Vec<f64>,
    beta: f64,
}

impl HyperbolicPoint {
    /// Wraps coordinates after validating membership of `H(β)` within
    /// `tol`: `⟨a,a⟩ = −β` and `a₀ ≥ √β`.
    pub fn new(coords: Vec<f64>, beta: f64, tol: f64) -> Result<Self, String> {
        if coords.len() < 2 {
            return Err("hyperbolic points need at least 2 coordinates".into());
        }
        if beta <= 0.0 {
            return Err("β must be positive".into());
        }
        let self_inner = lorentz_inner(&coords, &coords);
        if (self_inner + beta).abs() > tol {
            return Err(format!("⟨a,a⟩ = {self_inner}, expected −β = {}", -beta));
        }
        if coords[0] < beta.sqrt() - tol {
            return Err(format!("a₀ = {} below √β = {}", coords[0], beta.sqrt()));
        }
        Ok(HyperbolicPoint { coords, beta })
    }

    /// Wraps coordinates that are hyperboloid members *by construction*
    /// (e.g. produced by an analytic projection). No validation: for large
    /// time coordinates the `⟨a,a⟩ = −β` check suffers catastrophic
    /// cancellation (`cosh²m − sinh²m` at `m ≳ 20` is numerically noise),
    /// so analytic constructors must bypass it.
    pub fn new_unchecked(coords: Vec<f64>, beta: f64) -> Self {
        debug_assert!(coords.len() >= 2);
        debug_assert!(beta > 0.0);
        HyperbolicPoint { coords, beta }
    }

    /// Lifts spatial coordinates onto the hyperboloid by solving for the
    /// time coordinate: `a₀ = √(β + Σ aᵢ²)` — always valid.
    pub fn from_spatial(spatial: &[f64], beta: f64) -> Self {
        let norm_sq: f64 = spatial.iter().map(|v| v * v).sum();
        let mut coords = Vec::with_capacity(spatial.len() + 1);
        coords.push((norm_sq + beta).sqrt());
        coords.extend_from_slice(spatial);
        HyperbolicPoint { coords, beta }
    }

    /// Coordinates (index 0 is the time-like axis).
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The curvature parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Lorentz distance to another point of the same space.
    pub fn lorentz_distance(&self, other: &HyperbolicPoint) -> f64 {
        assert_eq!(self.beta, other.beta, "mixed curvature");
        lorentz_distance(&self.coords, &other.coords, self.beta)
    }

    /// Geodesic distance to another point of the same space.
    pub fn geodesic_distance(&self, other: &HyperbolicPoint) -> f64 {
        assert_eq!(self.beta, other.beta, "mixed curvature");
        geodesic_distance(&self.coords, &other.coords, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_product_signature() {
        let a = [2.0, 1.0, 1.0];
        let b = [3.0, 0.0, 2.0];
        // −2·3 + 1·0 + 1·2 = −4.
        assert_eq!(lorentz_inner(&a, &b), -4.0);
    }

    #[test]
    fn from_spatial_lies_on_hyperboloid() {
        for beta in [0.25, 1.0, 4.0] {
            let p = HyperbolicPoint::from_spatial(&[0.3, -1.2, 5.0], beta);
            let inner = lorentz_inner(p.coords(), p.coords());
            assert!((inner + beta).abs() < 1e-9, "β={beta}: ⟨a,a⟩={inner}");
            assert!(p.coords()[0] >= beta.sqrt());
        }
    }

    /// Lemma 4: d_Lo ≥ 0 with equality iff a = b.
    #[test]
    fn lemma4_nonnegative_and_zero_on_self() {
        let pts = [
            HyperbolicPoint::from_spatial(&[0.0, 0.0], 1.0),
            HyperbolicPoint::from_spatial(&[1.0, 2.0], 1.0),
            HyperbolicPoint::from_spatial(&[-3.0, 0.5], 1.0),
        ];
        for p in &pts {
            assert!(p.lorentz_distance(p).abs() < 1e-9);
            for q in &pts {
                assert!(p.lorentz_distance(q) >= -1e-9);
            }
        }
    }

    /// Lemma 5: the triangle inequality fails for some triples.
    #[test]
    fn lemma5_triangle_violation_exists() {
        // Three collinear spatial points: the hyperboloid's convexity makes
        // the direct distance exceed the detour for far-apart points.
        let a = HyperbolicPoint::from_spatial(&[0.0], 1.0);
        let b = HyperbolicPoint::from_spatial(&[2.0], 1.0);
        let c = HyperbolicPoint::from_spatial(&[4.0], 1.0);
        let ab = a.lorentz_distance(&b);
        let bc = b.lorentz_distance(&c);
        let ac = a.lorentz_distance(&c);
        assert!(
            ac > ab + bc,
            "expected violation: d(a,c)={ac} vs d(a,b)+d(b,c)={}",
            ab + bc
        );
    }

    #[test]
    fn geodesic_is_metric_on_samples() {
        let pts: Vec<HyperbolicPoint> = [
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![-1.5, 1.0],
        ]
        .iter()
        .map(|s| HyperbolicPoint::from_spatial(s, 1.0))
        .collect();
        for i in &pts {
            for j in &pts {
                for k in &pts {
                    let ij = i.geodesic_distance(j);
                    let jk = j.geodesic_distance(k);
                    let ik = i.geodesic_distance(k);
                    assert!(ik <= ij + jk + 1e-9);
                }
            }
        }
    }

    #[test]
    fn membership_validation() {
        assert!(HyperbolicPoint::new(vec![1.0, 0.0], 1.0, 1e-9).is_ok());
        // ⟨a,a⟩ = −1 requires a₀² − a₁² = 1.
        assert!(HyperbolicPoint::new(vec![2.0, 0.0], 1.0, 1e-9).is_err());
        assert!(HyperbolicPoint::new(vec![1.0, 0.0], -1.0, 1e-9).is_err());
        assert!(HyperbolicPoint::new(vec![1.0], 1.0, 1e-9).is_err());
        let ok = HyperbolicPoint::new(vec![2.0f64.sqrt(), 1.0], 1.0, 1e-9);
        assert!(ok.is_ok());
    }

    #[test]
    fn geodesic_zero_on_self() {
        // acosh near 1 amplifies rounding by √ε, so tolerance is ~1e-7.
        let p = HyperbolicPoint::from_spatial(&[0.7, -0.1], 2.0);
        assert!(p.geodesic_distance(&p).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mixed curvature")]
    fn mixed_curvature_panics() {
        let p = HyperbolicPoint::from_spatial(&[0.0], 1.0);
        let q = HyperbolicPoint::from_spatial(&[0.0], 2.0);
        let _ = p.lorentz_distance(&q);
    }
}
