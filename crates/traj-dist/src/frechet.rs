//! Discrete Fréchet distance (Eiter & Mannila, 1994).
//!
//! The "dog-leash" distance over discrete point sequences: the minimal, over
//! all monotone couplings, of the maximal coupled point distance. It **is a
//! metric** on sequences-as-curves (up to reparametrization), making it the
//! second in-repo control measure, and is one of the three spatio-temporal
//! target measures of the paper's Table IV (there called "discret Fréchet").

use traj_core::Trajectory;

/// Discrete Fréchet distance. `O(n·m)` time, rolling rows.
pub fn discrete_frechet(a: &Trajectory, b: &Trajectory) -> f64 {
    let ap = a.points();
    let bp = b.points();
    let m = bp.len();

    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    for (i, pa) in ap.iter().enumerate() {
        for (j, pb) in bp.iter().enumerate() {
            let d = pa.dist(pb);
            let reach = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                cur[j - 1].max(d)
            } else if j == 0 {
                prev[0].max(d)
            } else {
                prev[j - 1].min(prev[j]).min(cur[j - 1]).max(d)
            };
            cur[j] = reach;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(coords).unwrap()
    }

    #[test]
    fn identical_zero() {
        let a = t(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(discrete_frechet(&a, &a), 0.0);
    }

    #[test]
    fn parallel_lines() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = t(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert!((discrete_frechet(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = t(&[(0.0, 0.0), (3.0, 4.0)]);
        let b = t(&[(1.0, 1.0), (2.0, 2.0), (5.0, 1.0)]);
        assert_eq!(discrete_frechet(&a, &b), discrete_frechet(&b, &a));
    }

    #[test]
    fn dominated_by_worst_pair() {
        // The leash must reach the far point no matter the coupling.
        let a = t(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = t(&[(0.0, 0.0), (10.0, 7.0)]);
        assert!((discrete_frechet(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_coupling_beats_hausdorff_example() {
        // Classic: two zig-zags where Hausdorff is small but Fréchet is
        // large because the coupling must stay monotone.
        let a = t(&[(0.0, 0.0), (10.0, 0.0), (0.1, 0.1), (10.0, 0.1)]);
        let b = t(&[(0.0, 0.1), (10.0, 0.0)]);
        let f = discrete_frechet(&a, &b);
        let h = crate::hausdorff::hausdorff(&a, &b);
        assert!(f > h, "frechet {f} should exceed hausdorff {h}");
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let trajs = [
            t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0)]),
            t(&[(0.5, 0.5), (1.5, 1.0)]),
            t(&[(3.0, 0.0), (3.0, 2.0), (4.0, 2.0)]),
            t(&[(-1.0, -1.0), (0.0, -2.0), (1.0, -1.0)]),
        ];
        for i in 0..trajs.len() {
            for j in 0..trajs.len() {
                for k in 0..trajs.len() {
                    let ij = discrete_frechet(&trajs[i], &trajs[j]);
                    let jk = discrete_frechet(&trajs[j], &trajs[k]);
                    let ik = discrete_frechet(&trajs[i], &trajs[k]);
                    assert!(ik <= ij + jk + 1e-12);
                }
            }
        }
    }

    #[test]
    fn single_points() {
        let a = t(&[(0.0, 0.0)]);
        let b = t(&[(3.0, 4.0)]);
        assert!((discrete_frechet(&a, &b) - 5.0).abs() < 1e-12);
    }
}
