//! Baseline trajectory-embedding models, re-implemented on `lh-nn`.
//!
//! The paper plugs the LH-plugin into five published encoders (its Table
//! II): Neutraj (grid cells + RNN), TrajGAT (quadtree + graph attention),
//! Traj2SimVec (RNN + sub-trajectory supervision), ST2Vec (spatio-temporal
//! co-attention) and Tedj (3-D st-grid + RNN). The original codebases are
//! PyTorch; these are structurally faithful reconstructions — same
//! preprocessing family, same network family, same output contract (a
//! Euclidean embedding per trajectory) — with documented simplifications
//! listed per module.
//!
//! Every model implements [`TrajectoryEncoder`]: batch-encode trajectories
//! into a `B×d` Euclidean embedding matrix on the active tape. The
//! LH-plugin (in `lh-core`) is deliberately model-agnostic: it only ever
//! touches that output matrix, which is precisely the paper's claim.

pub mod features;
pub mod landmark;
pub mod neutraj;
pub mod st2vec;
pub mod tedj;
pub mod traits;
pub mod traj2simvec;
pub mod trajgat;

pub use landmark::LandmarkEncoder;
pub use neutraj::NeutrajEncoder;
pub use st2vec::St2VecEncoder;
pub use tedj::TedjEncoder;
pub use traits::{EncoderConfig, ModelKind, TrajectoryEncoder};
pub use traj2simvec::Traj2SimVecEncoder;
pub use trajgat::TrajGatEncoder;
