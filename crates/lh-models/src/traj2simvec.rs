//! Traj2SimVec-style encoder: LSTM with sub-trajectory robustness.
//!
//! Structure preserved from the original (Zhang et al., IJCAI'20): an LSTM
//! over point features with supervision designed around sub-trajectories.
//! Simplification: instead of the original's sub-trajectory distance
//! supervision (which needs ground-truth distances over all prefixes), the
//! encoder exposes [`Traj2SimVecEncoder::encode_prefixes`] so the trainer
//! can tie prefix embeddings to full-trajectory embeddings — the same
//! regularization pressure (stability of the representation under
//! truncation) without an extra O(N²·L) oracle pass.

use crate::features::{batch_steps, point_features, SPATIAL_DIM};
use crate::traits::{EncoderConfig, TrajectoryEncoder};
use lh_nn::layers::{Linear, LstmCell};
use lh_nn::{ParamStore, Tape, Var};
use rand::rngs::StdRng;
use traj_core::Trajectory;

/// LSTM + sub-trajectory encoder.
pub struct Traj2SimVecEncoder {
    lstm: LstmCell,
    head: Linear,
    embed_dim: usize,
}

impl Traj2SimVecEncoder {
    /// Registers parameters.
    pub fn new(config: EncoderConfig, store: &mut ParamStore, rng: &mut StdRng) -> Self {
        let lstm = LstmCell::new("t2sv.lstm", SPATIAL_DIM, config.hidden_dim, store, rng);
        let head = Linear::new("t2sv.head", config.hidden_dim, config.embed_dim, store, rng);
        Traj2SimVecEncoder {
            lstm,
            head,
            embed_dim: config.embed_dim,
        }
    }

    /// Encodes the half-length prefixes of a batch (the sub-trajectory
    /// auxiliary signal).
    pub fn encode_prefixes(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        trajs: &[&Trajectory],
    ) -> Var {
        let prefixes: Vec<Trajectory> = trajs
            .iter()
            .map(|t| t.prefix((t.len() / 2).max(1)))
            .collect();
        let refs: Vec<&Trajectory> = prefixes.iter().collect();
        self.encode_batch(tape, store, &refs)
    }
}

impl TrajectoryEncoder for Traj2SimVecEncoder {
    fn name(&self) -> &'static str {
        "traj2simvec"
    }

    fn output_dim(&self) -> usize {
        self.embed_dim
    }

    fn encode_batch(&self, tape: &mut Tape, store: &ParamStore, trajs: &[&Trajectory]) -> Var {
        assert!(!trajs.is_empty(), "empty batch");
        let seqs: Vec<_> = trajs.iter().map(|t| point_features(t)).collect();
        let (steps, masks) = batch_steps(tape, &seqs, (0, SPATIAL_DIM));
        let h = self.lstm.forward_sequence(tape, store, &steps, &masks);
        self.head.forward(tape, store, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::SeedableRng;

    fn build() -> (ParamStore, Traj2SimVecEncoder) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let enc = Traj2SimVecEncoder::new(EncoderConfig::default(), &mut store, &mut rng);
        (store, enc)
    }

    fn trajs() -> Vec<Trajectory> {
        vec![
            Trajectory::from_xy(&[(0.1, 0.1), (0.2, 0.3), (0.4, 0.4), (0.6, 0.5)]).unwrap(),
            Trajectory::from_xy(&[(0.9, 0.9), (0.8, 0.7)]).unwrap(),
        ]
    }

    #[test]
    fn shapes() {
        let (store, enc) = build();
        let ts = trajs();
        let refs: Vec<&Trajectory> = ts.iter().collect();
        let mut tape = Tape::new();
        let out = enc.encode_batch(&mut tape, &store, &refs);
        assert_eq!(tape.value(out).shape(), (2, 16));
    }

    #[test]
    fn prefix_embedding_shapes_match() {
        let (store, enc) = build();
        let ts = trajs();
        let refs: Vec<&Trajectory> = ts.iter().collect();
        let mut tape = Tape::new();
        let full = enc.encode_batch(&mut tape, &store, &refs);
        let pre = enc.encode_prefixes(&mut tape, &store, &refs);
        assert_eq!(tape.value(full).shape(), tape.value(pre).shape());
    }

    #[test]
    fn prefix_differs_from_full_for_long_trajectories() {
        let (store, enc) = build();
        let ts = trajs();
        let refs = vec![&ts[0]];
        let mut tape = Tape::new();
        let full = enc.encode_batch(&mut tape, &store, &refs);
        let pre = enc.encode_prefixes(&mut tape, &store, &refs);
        let d: f32 = tape
            .value(full)
            .row(0)
            .iter()
            .zip(tape.value(pre).row(0))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-5, "prefix must change the embedding");
    }

    #[test]
    fn single_point_trajectory_encodes() {
        let (store, enc) = build();
        let t = Trajectory::from_xy(&[(0.5, 0.5)]).unwrap();
        let mut tape = Tape::new();
        let out = enc.encode_batch(&mut tape, &store, &[&t]);
        assert!(tape.value(out).all_finite());
    }
}
