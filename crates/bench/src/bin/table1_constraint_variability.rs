//! **Table I** — Constraint Variability on Trajectory datasets.
//!
//! Computes RV and ARVS for DTW / SSPD / EDR over the six synthetic
//! dataset profiles. Paper values (real data) for comparison are printed
//! alongside; EXPERIMENTS.md discusses shape agreement (DTW/SSPD/EDR all
//! violate on every dataset, with dataset-dependent magnitude).
//!
//! Usage: `cargo run --release -p lh-bench --bin table1_constraint_variability
//!        [--n 120] [--triplets 20000] [--edr-eps 0.02] [--seed 42]
//!        [--cache-dir target/gt-cache] [--schedule balanced]
//!        [--prune landmark|early-abandon] [--prune-threshold 0.25]`
//!
//! With `--cache-dir`, each of the 21 ground-truth matrices is
//! checkpointed; a re-run at the same parameters loads them instead of
//! recomputing (the final `gt cache hits` line reports how many).
//! `--schedule` picks the builder work distribution (`serial`,
//! `row-chunked`, `balanced`, `wavefront`); every schedule produces
//! bit-identical matrices, so checkpoints written under one schedule are
//! cache hits under any other.

use lh_bench::printer::{pct, write_artifact};
use lh_bench::{print_header, Args, Table};
use lh_data::DatasetPreset;
use lh_metrics::{ratio_of_violation, sample_triplets};
use serde::Serialize;
use traj_core::normalize::Normalizer;
use traj_dist::{MatrixBuilder, Measure, MeasureKind, Schedule};

#[derive(Serialize)]
struct Cell {
    dataset: String,
    measure: String,
    rv: f64,
    arvs: f64,
    triples: usize,
}

/// Paper Table I values for the matching dataset/measure, for side-by-side
/// printing: (rv, arvs).
#[allow(clippy::approx_constant)] // 0.318 is the paper's Porto ARVS, not 1/π
fn paper_value(preset: DatasetPreset, measure: MeasureKind) -> Option<(f64, f64)> {
    use DatasetPreset::*;
    use MeasureKind::*;
    let v = match (preset, measure) {
        (Chengdu, Dtw) => (0.193, 0.147),
        (Porto, Dtw) => (0.253, 0.159),
        (Xian, Dtw) => (0.207, 0.103),
        (TDrive, Dtw) => (0.369, 0.486),
        (Osm, Dtw) => (0.154, 0.041),
        (Geolife, Dtw) => (0.380, 0.144),
        (Chengdu, Sspd) => (0.286, 0.125),
        (Porto, Sspd) => (0.278, 0.121),
        (Xian, Sspd) => (0.226, 0.057),
        (TDrive, Sspd) => (0.370, 0.126),
        (Osm, Sspd) => (0.057, 0.048),
        (Geolife, Sspd) => (0.186, 0.044),
        (Chengdu, Edr) => (0.130, 0.233),
        (Porto, Edr) => (0.167, 0.318),
        (Xian, Edr) => (0.382, 1.087),
        (TDrive, Edr) => (0.537, 1.427),
        (Osm, Edr) => (0.094, 0.166),
        (Geolife, Edr) => (0.118, 1.756),
        _ => return None,
    };
    Some(v)
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 120usize);
    let max_triplets = args.get("triplets", 20_000usize);
    let edr_eps = args.get("edr-eps", 0.02f64);
    let seed = args.get("seed", 42u64);
    let cache_dir = args.get_str("cache-dir").map(str::to_string);
    let schedule = match args.get_str("schedule") {
        Some(name) => lh_bench::args::parse_schedule(name).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        }),
        None => Schedule::default(),
    };
    // `--prune landmark` routes every build through the layered landmark
    // screen + early-abandon pipeline. Checkpoints are fingerprinted
    // prune-free, so a pruned run against a cache written by an exact run
    // still hits and returns the exact matrices bit-identically (the CI
    // smoke test asserts exactly this via the `gt cache hits` line).
    let prune = args.get_str("prune").map(str::to_string);
    let prune_threshold = args.get("prune-threshold", 0.25f64);
    if let Some(mode) = prune.as_deref() {
        if !matches!(mode, "landmark" | "early-abandon") {
            eprintln!("unknown --prune {mode:?} (valid: landmark|early-abandon)");
            std::process::exit(2);
        }
    }

    // One builder per measure config; tracks cache hits across all 21
    // matrix builds for the summary line (and the CI cache smoke test).
    let mut gt_builds = 0usize;
    let mut gt_hits = 0usize;
    let mut gt_seconds = 0.0f64;
    let mut build = |measure: Measure, trajs: &[traj_core::Trajectory]| {
        let mut b = MatrixBuilder::new(measure).schedule(schedule);
        match prune.as_deref() {
            Some("landmark") => b = b.prune_landmark(prune_threshold),
            Some("early-abandon") => b = b.prune(prune_threshold),
            _ => {}
        }
        if let Some(dir) = &cache_dir {
            b = b.cache_dir(dir);
        }
        let out = b.build_pairwise(trajs);
        gt_builds += 1;
        gt_hits += out.report.cache.is_hit() as usize;
        gt_seconds += out.report.seconds;
        out.matrix
    };

    print_header(
        "Table I",
        "triangle-inequality constraint variability (RV / ARVS)",
    );
    let mut table = Table::new(&["dataset", "measure", "RV", "ARVS", "paper RV", "paper ARVS"]);
    let mut cells = Vec::new();
    for preset in DatasetPreset::PAPER_SETS {
        let raw = lh_data::generate(preset, n, seed);
        let normalized = Normalizer::fit(&raw).expect("non-degenerate").dataset(&raw);
        let triplets = sample_triplets(n, max_triplets, seed);
        for kind in MeasureKind::SPATIAL {
            let measure = kind.measure().with_edr_eps(edr_eps);
            let matrix = build(measure, normalized.trajectories());
            let stats = ratio_of_violation(&matrix, &triplets);
            let paper = paper_value(preset, kind);
            table.row(vec![
                preset.name().to_string(),
                kind.name().to_string(),
                format!("{}%", pct(stats.rv)),
                format!("{:.3}", stats.arvs),
                paper.map_or("-".into(), |(rv, _)| format!("{}%", pct(rv))),
                paper.map_or("-".into(), |(_, arvs)| format!("{arvs:.3}")),
            ]);
            cells.push(Cell {
                dataset: preset.name().to_string(),
                measure: kind.name().to_string(),
                rv: stats.rv,
                arvs: stats.arvs,
                triples: stats.triples,
            });
        }
    }
    table.print();
    let path = write_artifact("table1_constraint_variability", &cells);
    println!("\nartifact: {}", path.display());

    // Control: metric measures must be violation-free.
    let raw = lh_data::generate(DatasetPreset::Chengdu, n.min(80), seed);
    let normalized = Normalizer::fit(&raw).expect("non-degenerate").dataset(&raw);
    let triplets = sample_triplets(normalized.len(), max_triplets, seed);
    println!("\ncontrols (metric measures, expect RV = 0):");
    for kind in [
        MeasureKind::Hausdorff,
        MeasureKind::DiscreteFrechet,
        MeasureKind::Erp,
    ] {
        let matrix = build(kind.measure(), normalized.trajectories());
        let stats = ratio_of_violation(&matrix, &triplets);
        println!("  {:<18} RV = {}%", kind.name(), pct(stats.rv));
    }

    println!(
        "\nground truth: {gt_builds} matrices in {gt_seconds:.2}s, gt cache hits: {gt_hits}/{gt_builds}{}",
        if cache_dir.is_none() {
            " (cache disabled; pass --cache-dir to checkpoint)"
        } else {
            ""
        }
    );
}
