//! The pivot-partitioned ANN index tier: sub-linear exact kNN for metric
//! variants, budgeted best-effort kNN for the fused distance.
//!
//! An [`IndexedStore`] owns one [`EmbeddingStore`] plus an IVF-style
//! partition of its rows into pivot cells ([`build`]): each cell keeps a
//! centroid row (served through the same monomorphized
//! [`DistanceKernel`](super::kernel) machinery as the flat scans), the
//! bound-space centroid distance of every member, and the cell radius.
//! A query scans the `√n`-ish centroids, orders cells by their
//! triangle-inequality lower bound `max(0, d(q,c) − r_cell)`, and then:
//!
//! * **metric variants** (Euclidean, Lorentz — see [`bound::BoundSpace`])
//!   skip every cell whose lower bound exceeds the current k-th best and,
//!   inside probed cells, every member with `|d(q,c) − d(c,x)| > kth`
//!   (Schubert-style stored-distance bound) — composed tightest-wins
//!   with a **second-level landmark bound** (`LandmarkBlock`): a few
//!   farthest-point-selected store rows act as global landmarks, every
//!   member keeps its bound-space distance to each, and
//!   `max_j |θ(q,l_j) − θ(l_j,x)|` (the `traj_dist::landmark` feature
//!   gap, transplanted into bound space) prunes members the single
//!   centroid bound cannot separate. All bounds are padded by a
//!   conservative float-rounding slack, so results are **bit-identical**
//!   to [`EmbeddingStore::knn`] — recall 1.0 by construction, sub-linear
//!   by pruning;
//! * **the fused variant** is non-metric (the paper's thesis) and
//!   forfeits those bounds: it is served by probing the
//!   [`IndexedStore::probe_budget`] nearest-centroid cells with exact
//!   re-ranking inside each. With no budget every cell is probed and
//!   results are again bit-identical (at flat-scan cost); with a budget,
//!   recall is measured, not guaranteed — the quantified price of
//!   triangle-inequality violations at serving time.
//!
//! Every prune decision fails open on non-finite values (NaN rows poison
//! bounds into "cannot prune", never into a wrong skip), keeping the
//! engine's NaN-determinism contract.

pub mod bound;
pub mod build;
mod codec;

use super::kernel::{self, DistanceKernel};
use super::store::{results_from_topk, EmbeddingStore, RetrievalResult};
use crate::config::PluginVariant;
use bound::BoundSpace;
use build::IndexParams;
use serde::Serialize;
use traj_core::parallel::{default_threads, parallel_map};
use traj_core::topk::TopK;

/// One pivot cell: member rows, their bound-space centroid distances,
/// and the cell radius (max member distance).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct IndexCell {
    /// Member row ids, ascending.
    pub members: Vec<u32>,
    /// Bound-space centroid distance per member, parallel to `members`.
    pub dcx: Vec<f64>,
    /// Max of `dcx` (NaN if any member distance is NaN — fails open).
    pub radius: f64,
}

impl IndexCell {
    pub(crate) fn new(members: Vec<u32>, dcx: Vec<f64>) -> Self {
        let radius = dcx.iter().copied().max_by(f64::total_cmp).unwrap_or(0.0);
        IndexCell {
            members,
            dcx,
            radius,
        }
    }
}

/// The second-level landmark bound: a handful of farthest-point-selected
/// store rows plus every member's bound-space distance to each (the
/// member's landmark *feature row*). The probe loop prunes a member when
/// the Chebyshev gap between the query's and the member's feature rows
/// exceeds the current k-th best — the same admissible mechanism as
/// [`traj_dist::landmark`], applied in bound space (see
/// [`BoundSpace::landmark_prunes`]). Built only for metric spaces.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LandmarkBlock {
    /// Landmark rows, same layout as the store (`k` rows).
    pub rows: EmbeddingStore,
    /// Bound-space row→landmark distances, row-major `n × k`.
    pub dlx: Vec<f64>,
}

impl LandmarkBlock {
    /// Number of landmarks.
    pub(crate) fn k(&self) -> usize {
        self.rows.len()
    }

    /// Feature row of store row `m`.
    pub(crate) fn features(&self, m: usize) -> &[f64] {
        &self.dlx[m * self.k()..(m + 1) * self.k()]
    }
}

/// Aggregate probe accounting for one or more indexed queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ProbeStats {
    /// Queries served.
    pub queries: usize,
    /// Cell-visit opportunities (`num_cells × queries`).
    pub cells: usize,
    /// Cells actually scanned.
    pub cells_probed: usize,
    /// Cells skipped by the triangle-inequality cell bound.
    pub cells_pruned: usize,
    /// Candidate-row opportunities (`len × queries`).
    pub rows: usize,
    /// Rows whose kernel distance was evaluated.
    pub rows_scanned: usize,
    /// Rows skipped by a member bound (centroid or landmark).
    pub rows_pruned: usize,
    /// Subset of `rows_pruned` skipped by the second-level landmark
    /// bound — members the centroid bound alone could not separate.
    pub rows_pruned_landmark: usize,
}

impl ProbeStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.queries += other.queries;
        self.cells += other.cells;
        self.cells_probed += other.cells_probed;
        self.cells_pruned += other.cells_pruned;
        self.rows += other.rows;
        self.rows_scanned += other.rows_scanned;
        self.rows_pruned += other.rows_pruned;
        self.rows_pruned_landmark += other.rows_pruned_landmark;
    }

    /// Fraction of candidate rows whose kernel distance was *not*
    /// evaluated (the headline pruning metric; 0 for a flat scan).
    pub fn prune_rate(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        1.0 - self.rows_scanned as f64 / self.rows as f64
    }

    /// Fraction of candidate rows skipped by the second-level landmark
    /// bound specifically — the composed bound's marginal win over the
    /// centroid bound alone.
    pub fn landmark_prune_rate(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.rows_pruned_landmark as f64 / self.rows as f64
    }

    /// Mean cells probed per query.
    pub fn cells_probed_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.cells_probed as f64 / self.queries as f64
    }
}

/// An [`EmbeddingStore`] served through the pivot-partitioned index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedStore {
    store: EmbeddingStore,
    centroids: EmbeddingStore,
    cells: Vec<IndexCell>,
    landmarks: Option<LandmarkBlock>,
    space: BoundSpace,
    probe_budget: Option<usize>,
}

impl IndexedStore {
    /// Builds the index over `store` (see [`build`] for the pipeline).
    pub fn build(store: EmbeddingStore, params: IndexParams) -> Self {
        let space = BoundSpace::for_variant(store.variant(), store.beta());
        let built = build::build_cells(&store, &space, &params);
        let landmarks = build::build_landmarks(&store, &space, &params);
        let cells = built
            .members
            .into_iter()
            .zip(built.dcx)
            .map(|(m, d)| IndexCell::new(m, d))
            .collect();
        IndexedStore {
            store,
            centroids: built.centroids,
            cells,
            landmarks,
            space,
            probe_budget: None,
        }
    }

    /// [`IndexedStore::build`] with default parameters (`⌈√n⌉` cells).
    pub fn with_default_params(store: EmbeddingStore) -> Self {
        Self::build(store, IndexParams::default())
    }

    /// Reassembles an index from already-built parts (codec path).
    pub(crate) fn from_parts(
        store: EmbeddingStore,
        centroids: EmbeddingStore,
        cells: Vec<IndexCell>,
        landmarks: Option<LandmarkBlock>,
    ) -> Self {
        let space = BoundSpace::for_variant(store.variant(), store.beta());
        IndexedStore {
            store,
            centroids,
            cells,
            landmarks,
            space,
            probe_budget: None,
        }
    }

    /// Caps the number of cells probed per query. `None` (the default)
    /// probes until the exact bound allows stopping — for metric variants
    /// that keeps results bit-identical to the flat scan; for the fused
    /// variant it means probing every cell. Setting a budget turns any
    /// variant into best-effort serving with measured (not guaranteed)
    /// recall.
    pub fn with_probe_budget(mut self, budget: Option<usize>) -> Self {
        self.probe_budget = budget;
        self
    }

    /// Configured probe budget.
    pub fn probe_budget(&self) -> Option<usize> {
        self.probe_budget
    }

    /// Whether this configuration guarantees flat-scan-identical results:
    /// a metric bound space and no probe budget.
    pub fn is_exact(&self) -> bool {
        self.space.is_metric() && self.probe_budget.is_none()
    }

    /// The bound space the index prunes in.
    pub fn bound_space(&self) -> BoundSpace {
        self.space
    }

    /// The underlying store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Releases the underlying store, discarding the index.
    pub fn into_store(self) -> EmbeddingStore {
        self.store
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of pivot cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of second-level landmark rows (0 when the space is
    /// non-metric or the block was disabled at build time).
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.as_ref().map_or(0, LandmarkBlock::k)
    }

    /// Active plugin variant.
    pub fn variant(&self) -> PluginVariant {
        self.store.variant()
    }

    /// Index overhead on top of the store payload: centroid rows,
    /// per-member bookkeeping, and the landmark block (the Table V
    /// memory accounting).
    pub fn index_bytes(&self) -> usize {
        let per_member = std::mem::size_of::<u32>() + std::mem::size_of::<f64>();
        let landmark_bytes = self.landmarks.as_ref().map_or(0, |lm| {
            lm.rows.payload_bytes() + lm.dlx.len() * std::mem::size_of::<f64>()
        });
        self.centroids.payload_bytes()
            + self.len() * per_member
            + self.cells.len() * std::mem::size_of::<f64>()
            + landmark_bytes
    }

    /// Store payload plus index overhead.
    pub fn payload_bytes(&self) -> usize {
        self.store.payload_bytes() + self.index_bytes()
    }

    /// Top-k for query row `qi` of `queries` through the index.
    pub fn knn(&self, queries: &EmbeddingStore, qi: usize, k: usize) -> Vec<RetrievalResult> {
        self.knn_with_stats(queries, qi, k).0
    }

    /// [`IndexedStore::knn`] plus probe accounting.
    pub fn knn_with_stats(
        &self,
        queries: &EmbeddingStore,
        qi: usize,
        k: usize,
    ) -> (Vec<RetrievalResult>, ProbeStats) {
        let (top, stats) = self.knn_topk_masked(queries, qi, k, None);
        (results_from_topk(top), stats)
    }

    /// The masked probe core: top-k as a raw [`TopK`] heap (keys are
    /// store row ids), skipping rows flagged in `dead`.
    ///
    /// This is the serving tier's delta-overlay entry point: a compacted
    /// base keeps its index attached while later removals tombstone rows,
    /// and the probe must never let a tombstoned row occupy a heap slot
    /// (filtering after selection would displace live rows). Skipping
    /// rows only ever *raises* the running k-th-best threshold τ, so
    /// every triangle-inequality and landmark bound stays admissible and
    /// masked indexed results remain bit-identical to a masked flat scan.
    pub(crate) fn knn_topk_masked(
        &self,
        queries: &EmbeddingStore,
        qi: usize,
        k: usize,
        dead: Option<&[bool]>,
    ) -> (TopK, ProbeStats) {
        let mut stats = ProbeStats {
            queries: 1,
            cells: self.cells.len(),
            rows: self.store.len(),
            ..ProbeStats::default()
        };
        if k == 0 || self.store.is_empty() {
            return (TopK::new(k), stats);
        }

        // One O(num_cells · d) centroid scan, then bound-space mapping
        // and cell ordering by triangle lower bound (raw centroid
        // distance for the unprunable fused space).
        let dqc = self.centroids.distance_row_from(queries, qi);
        let pq: Vec<f64> = dqc.iter().map(|&d| self.space.map(d)).collect();
        let mut order: Vec<(f64, u32)> = self
            .cells
            .iter()
            .enumerate()
            .map(|(j, cell)| {
                let key = if self.space.is_metric() {
                    (pq[j] - cell.radius).max(0.0)
                } else {
                    pq[j]
                };
                (key, j as u32)
            })
            .collect();
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // The query's landmark feature row (O(k_l · d), once per query):
        // bound-space distances to each landmark, compared against every
        // member's stored feature row inside the probe loop.
        let pl: Option<Vec<f64>> = self.landmarks.as_ref().map(|lm| {
            lm.rows
                .distance_row_from(queries, qi)
                .iter()
                .map(|&d| self.space.map(d))
                .collect()
        });

        let top = match self.store.variant() {
            PluginVariant::Original => self.probe(
                &kernel::EuclideanKernel::bind(&self.store, queries, qi),
                &pq,
                pl.as_deref(),
                &order,
                k,
                dead,
                &mut stats,
            ),
            PluginVariant::LorentzVanilla | PluginVariant::LorentzCosh => self.probe(
                &kernel::LorentzKernel::bind(&self.store, queries, qi),
                &pq,
                pl.as_deref(),
                &order,
                k,
                dead,
                &mut stats,
            ),
            PluginVariant::FusionDist => self.probe(
                &kernel::FusedKernel::bind(&self.store, queries, qi),
                &pq,
                pl.as_deref(),
                &order,
                k,
                dead,
                &mut stats,
            ),
        };
        (top, stats)
    }

    /// Batched top-k, parallel across queries.
    pub fn knn_batch(&self, queries: &EmbeddingStore, k: usize) -> Vec<Vec<RetrievalResult>> {
        self.knn_batch_with_stats(queries, k).0
    }

    /// [`IndexedStore::knn_batch`] plus aggregated probe accounting.
    pub fn knn_batch_with_stats(
        &self,
        queries: &EmbeddingStore,
        k: usize,
    ) -> (Vec<Vec<RetrievalResult>>, ProbeStats) {
        let nq = queries.len();
        let per_query: Vec<(Vec<RetrievalResult>, ProbeStats)> =
            parallel_map(nq, default_threads(nq), |qi| {
                self.knn_with_stats(queries, qi, k)
            });
        let mut stats = ProbeStats::default();
        let results = per_query
            .into_iter()
            .map(|(res, s)| {
                stats.merge(&s);
                res
            })
            .collect();
        (results, stats)
    }

    /// The probe loop, monomorphized per kernel. Visits cells in `order`;
    /// for metric spaces skips cells/members whose slack-padded triangle
    /// bound already exceeds the current k-th best (`τ`), re-mapping `τ`
    /// into bound space lazily (only when the heap's worst survivor
    /// changes — Lorentz mapping costs an `acosh`). Member pruning
    /// composes the centroid bound with the second-level landmark bound
    /// (`pl` = the query's feature row) tightest-wins: either certifying
    /// `d(q,x) > τ` skips the kernel evaluation. Rows flagged in `dead`
    /// (serving-tier tombstones) are skipped before any bound fires and
    /// are counted in neither the scanned nor the pruned tallies.
    #[allow(clippy::too_many_arguments)] // internal, monomorphized per kernel
    fn probe<K: DistanceKernel>(
        &self,
        kern: &K,
        pq: &[f64],
        pl: Option<&[f64]>,
        order: &[(f64, u32)],
        k: usize,
        dead: Option<&[bool]>,
        stats: &mut ProbeStats,
    ) -> TopK {
        let dim = self.store.dim();
        let metric = self.space.is_metric();
        let budget = self.probe_budget.unwrap_or(usize::MAX);
        let mut top = TopK::new(k);
        // τ in raw space (bit-tracked so NaN updates are seen) and its
        // bound-space image; ∞ while the heap is not yet full.
        let mut tau_bits = f64::INFINITY.to_bits();
        let mut tau_p = f64::INFINITY;
        for &(lb, j) in order {
            if stats.cells_probed >= budget {
                break;
            }
            let cell = &self.cells[j as usize];
            if cell.members.is_empty() {
                continue;
            }
            if top.len() == k {
                let worst = top.worst().expect("full heap").1;
                if worst.to_bits() != tau_bits {
                    tau_bits = worst.to_bits();
                    tau_p = self.space.map(worst);
                }
            }
            let pqj = pq[j as usize];
            // Cell bound: every member is at least `lb` away; a NaN bound
            // or τ compares false and fails open into a probe.
            if metric && lb > tau_p + self.space.slack(dim, pqj, cell.radius, tau_p) {
                stats.cells_pruned += 1;
                continue;
            }
            stats.cells_probed += 1;
            let mut thresh = if metric {
                tau_p + self.space.slack(dim, pqj, cell.radius, tau_p)
            } else {
                f64::INFINITY
            };
            for (&m, &dc) in cell.members.iter().zip(&cell.dcx) {
                // Tombstoned rows are not part of the live snapshot.
                if dead.is_some_and(|d| d[m as usize]) {
                    continue;
                }
                // Member bound: d(q,x) ≥ |d(q,c) − d(c,x)|.
                if metric && (pqj - dc).abs() > thresh {
                    stats.rows_pruned += 1;
                    continue;
                }
                // Second-level landmark bound, tightest-wins with the
                // centroid bound: d(q,x) ≥ max_j |θ(q,l_j) − θ(l_j,x)|.
                if let (Some(pl), Some(lm)) = (pl, self.landmarks.as_ref()) {
                    if self
                        .space
                        .landmark_prunes(dim, pl, lm.features(m as usize), tau_p)
                    {
                        stats.rows_pruned += 1;
                        stats.rows_pruned_landmark += 1;
                        continue;
                    }
                }
                let d = kern.distance_to(m as usize) as f64;
                stats.rows_scanned += 1;
                top.offer(m as usize, d);
                if top.len() == k {
                    let worst = top.worst().expect("full heap").1;
                    if worst.to_bits() != tau_bits {
                        tau_bits = worst.to_bits();
                        tau_p = self.space.map(worst);
                        if metric {
                            thresh = tau_p + self.space.slack(dim, pqj, cell.radius, tau_p);
                        }
                    }
                }
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::super::store::tests::store_with_rows;
    use super::*;

    fn bits(hits: &[RetrievalResult]) -> Vec<(usize, u32)> {
        hits.iter()
            .map(|h| (h.index, h.distance.to_bits()))
            .collect()
    }

    fn params(cells: usize) -> IndexParams {
        IndexParams {
            n_cells: Some(cells),
            ..IndexParams::default()
        }
    }

    #[test]
    fn indexed_matches_flat_scan_all_variants() {
        for variant in PluginVariant::ABLATION {
            let s = store_with_rows(variant);
            for cells in 1..=3 {
                let ix = IndexedStore::build(s.clone(), params(cells));
                for k in [0, 1, 2, 3, 10] {
                    for qi in 0..s.len() {
                        assert_eq!(
                            bits(&ix.knn(&s, qi, k)),
                            bits(&s.knn(&s, qi, k)),
                            "{} cells={cells} k={k} qi={qi}",
                            variant.name()
                        );
                    }
                    let (batch, stats) = ix.knn_batch_with_stats(&s, k);
                    assert_eq!(batch.len(), s.len());
                    for (qi, hits) in batch.iter().enumerate() {
                        assert_eq!(bits(hits), bits(&s.knn(&s, qi, k)));
                    }
                    assert_eq!(stats.queries, s.len());
                    assert_eq!(stats.rows, s.len() * s.len());
                    assert!(stats.rows_scanned + stats.rows_pruned <= stats.rows);
                }
            }
        }
    }

    #[test]
    fn exactness_flags() {
        let eu = IndexedStore::build(store_with_rows(PluginVariant::Original), params(2));
        assert!(eu.is_exact());
        assert!(!eu.clone().with_probe_budget(Some(1)).is_exact());
        let fu = IndexedStore::build(store_with_rows(PluginVariant::FusionDist), params(2));
        assert!(!fu.is_exact(), "fused distance admits no exact bound");
        assert!(!fu.bound_space().is_metric());
    }

    #[test]
    fn empty_store_and_zero_k_serve_empty() {
        let s = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        let ix = IndexedStore::with_default_params(s);
        assert!(ix.is_empty());
        assert_eq!(ix.num_cells(), 0);
        let mut q = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        q.push(&[1.0, 2.0], None, None);
        assert!(ix.knn(&q, 0, 5).is_empty());
        let with_rows = IndexedStore::build(store_with_rows(PluginVariant::Original), params(2));
        assert!(with_rows.knn(&q, 0, 0).is_empty());
    }

    #[test]
    fn fused_budget_caps_probes() {
        let s = store_with_rows(PluginVariant::FusionDist);
        let ix = IndexedStore::build(s.clone(), params(3)).with_probe_budget(Some(1));
        let (_, stats) = ix.knn_batch_with_stats(&s, 2);
        assert!(stats.cells_probed <= s.len(), "≤ 1 probe per query");
        assert!(stats.cells_probed <= stats.queries);
    }

    #[test]
    fn nan_rows_fail_open_and_stay_deterministic() {
        let mut db = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        db.push(&[0.0, 0.0], None, None);
        db.push(&[f32::NAN, 1.0], None, None);
        db.push(&[2.0, 0.0], None, None);
        db.push(&[f32::INFINITY, 0.0], None, None);
        db.push(&[1.0, 0.0], None, None);
        for cells in 1..=4 {
            let ix = IndexedStore::build(db.clone(), params(cells));
            for k in [1, 3, 5] {
                for qi in 0..db.len() {
                    assert_eq!(
                        bits(&ix.knn(&db, qi, k)),
                        bits(&db.knn(&db, qi, k)),
                        "cells={cells} k={k} qi={qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_report_pruning_on_separated_clusters() {
        // Two far-apart clusters: querying inside one must prune the
        // other cell entirely once the heap fills.
        let mut db = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        for i in 0..8 {
            db.push(&[i as f32 * 0.01, 0.0], None, None);
        }
        for i in 0..8 {
            db.push(&[1000.0 + i as f32 * 0.01, 0.0], None, None);
        }
        let ix = IndexedStore::build(db.clone(), params(2));
        let mut q = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        q.push(&[0.02, 0.0], None, None);
        let (hits, stats) = ix.knn_batch_with_stats(&q, 4);
        assert_eq!(bits(&hits[0]), bits(&db.knn(&q, 0, 4)));
        assert!(
            stats.prune_rate() > 0.0,
            "far cluster must be pruned: {stats:?}"
        );
        assert_eq!(stats.cells_probed + stats.cells_pruned, stats.cells);
    }

    #[test]
    fn payload_accounting_includes_index_overhead() {
        let s = store_with_rows(PluginVariant::LorentzCosh);
        let base = s.payload_bytes();
        let ix = IndexedStore::build(s.clone(), params(2));
        assert!(ix.index_bytes() > 0);
        assert_eq!(ix.payload_bytes(), base + ix.index_bytes());
        // The landmark block is part of the accounted overhead.
        let no_lm = IndexedStore::build(
            s,
            IndexParams {
                n_cells: Some(2),
                n_landmarks: 0,
                ..IndexParams::default()
            },
        );
        assert!(ix.index_bytes() > no_lm.index_bytes());
    }

    /// A single cell whose centroid sits midway between two far-apart
    /// clusters: every member has nearly the same centroid distance, so
    /// the Schubert bound `|d(q,c) − d(c,x)|` separates (almost) nothing.
    /// The landmark bound — with farthest-point landmarks landing in both
    /// clusters — certifies the far cluster out, keeping results
    /// bit-identical while scanning fewer rows.
    #[test]
    fn landmark_bound_prunes_where_centroid_bound_cannot() {
        let mut db = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        for i in 0..8 {
            db.push(&[i as f32 * 0.01, 0.0], None, None);
        }
        for i in 0..8 {
            db.push(&[1000.0 + i as f32 * 0.01, 0.0], None, None);
        }
        let mut q = EmbeddingStore::new(2, PluginVariant::Original, 1.0, None);
        q.push(&[0.02, 0.0], None, None);

        let ix = IndexedStore::build(db.clone(), params(1));
        assert_eq!(ix.num_landmarks(), 4);
        let (hits, stats) = ix.knn_batch_with_stats(&q, 4);
        assert_eq!(bits(&hits[0]), bits(&db.knn(&q, 0, 4)));
        assert!(
            stats.rows_pruned_landmark > 0,
            "landmark bound must reject far-cluster members the centroid \
             bound cannot separate: {stats:?}"
        );
        assert!(stats.rows_pruned >= stats.rows_pruned_landmark);

        let no_lm = IndexedStore::build(
            db.clone(),
            IndexParams {
                n_cells: Some(1),
                n_landmarks: 0,
                ..IndexParams::default()
            },
        );
        assert_eq!(no_lm.num_landmarks(), 0);
        let (hits0, stats0) = no_lm.knn_batch_with_stats(&q, 4);
        assert_eq!(bits(&hits0[0]), bits(&hits[0]));
        assert_eq!(stats0.rows_pruned_landmark, 0);
        assert!(
            stats.rows_scanned < stats0.rows_scanned,
            "composed bound must scan fewer rows: {stats:?} vs {stats0:?}"
        );
    }

    /// The fused variant has no metric bound space, so no landmark block
    /// is built even when requested — and serving stays correct.
    #[test]
    fn fused_variant_builds_no_landmarks() {
        let s = store_with_rows(PluginVariant::FusionDist);
        let ix = IndexedStore::build(
            s.clone(),
            IndexParams {
                n_cells: Some(2),
                n_landmarks: 8,
                ..IndexParams::default()
            },
        );
        assert_eq!(ix.num_landmarks(), 0);
        for qi in 0..s.len() {
            assert_eq!(bits(&ix.knn(&s, qi, 3)), bits(&s.knn(&s, qi, 3)));
        }
    }
}
