//! **Table VI** — incremental ablation: original → lh-vanilla → lh-cosh →
//! fusion-dist, per model × measure (HR@5/10/50).
//!
//! Usage: `cargo run --release -p lh-bench --bin table6_ablation
//!        [--n 200] [--epochs 30] [--seed 42] [--fast]`

use lh_bench::printer::{pct, write_artifact};
use lh_bench::{default_spec, print_header, Args, Table};
use lh_core::config::PluginVariant;
use lh_core::pipeline::run_experiment;
use lh_metrics::ranking::RankingEval;
use lh_models::ModelKind;
use serde::Serialize;
use traj_dist::MeasureKind;

#[derive(Serialize)]
struct CellOut {
    model: String,
    measure: String,
    variant: String,
    eval: RankingEval,
}

fn main() {
    let args = Args::parse();
    print_header(
        "Table VI",
        "ablation: original / lh-vanilla / lh-cosh / fusion-dist",
    );
    // The training-free Landmark encoder is the floor row of the
    // ablation: the plugin's projection/fusion stages are the only
    // trainable parts on top of its constant featurization.
    let models = if args.flag("fast") {
        vec![ModelKind::Traj2SimVec, ModelKind::Landmark]
    } else {
        vec![
            ModelKind::Neutraj,
            ModelKind::TrajGat,
            ModelKind::Traj2SimVec,
            ModelKind::Landmark,
        ]
    };

    let mut table = Table::new(&[
        "model",
        "sim",
        "metric",
        "original",
        "lh-vanilla",
        "lh-cosh",
        "fusion-dist",
    ]);
    let mut cells: Vec<CellOut> = Vec::new();
    for &model in &models {
        for measure in MeasureKind::SPATIAL {
            let mut results: Vec<RankingEval> = Vec::new();
            for variant in PluginVariant::ABLATION {
                let mut spec = default_spec(&args);
                spec.model = model;
                spec.measure = measure;
                spec.trainer.epochs = args.get("epochs", 30usize);
                spec.plugin = spec.plugin.with_variant(variant);
                let out = run_experiment(&spec);
                cells.push(CellOut {
                    model: model.name().into(),
                    measure: measure.name().into(),
                    variant: variant.name().into(),
                    eval: out.eval,
                });
                results.push(out.eval);
                eprintln!(
                    "[table6] finished {} / {} / {}",
                    model.name(),
                    measure.name(),
                    variant.name()
                );
            }
            for (metric, f) in [
                (
                    "HR@5",
                    Box::new(|e: &RankingEval| e.hr5) as Box<dyn Fn(&RankingEval) -> f64>,
                ),
                ("HR@10", Box::new(|e: &RankingEval| e.hr10)),
                ("HR@50", Box::new(|e: &RankingEval| e.hr50)),
            ] {
                table.row(vec![
                    model.name().into(),
                    measure.name().into(),
                    metric.into(),
                    pct(f(&results[0])),
                    pct(f(&results[1])),
                    pct(f(&results[2])),
                    pct(f(&results[3])),
                ]);
            }
        }
    }
    table.print();
    let path = write_artifact("table6_ablation", &cells);
    println!("\nartifact: {}", path.display());
}
